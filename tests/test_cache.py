"""Unit tests for the set-associative cache model."""

import pytest

from repro.errors import ConfigurationError
from repro.memory.cache import Cache, WritePolicy
from repro.trace.events import AccessKind

R, W = AccessKind.READ, AccessKind.WRITE


def make(capacity=1024, line=32, ways=2, policy=WritePolicy.WRITE_BACK):
    return Cache("c", capacity, line, ways, policy)


class TestGeometryValidation:
    def test_non_power_of_two_capacity(self):
        with pytest.raises(ConfigurationError):
            make(capacity=1000)

    def test_non_power_of_two_line(self):
        with pytest.raises(ConfigurationError):
            make(line=24)

    def test_too_many_ways(self):
        with pytest.raises(ConfigurationError):
            Cache("c", 64, 32, 4)

    def test_bad_latency(self):
        with pytest.raises(ConfigurationError):
            Cache("c", 1024, 32, 2, hit_latency=0)

    def test_sets_computed(self):
        cache = make(capacity=1024, line=32, ways=2)
        assert cache.sets == 16


class TestHitMissBehaviour:
    def test_cold_miss_then_hit(self):
        cache = make()
        first = cache.access(0x1000, 4, R, 0)
        assert not first.hit
        assert first.refill_bytes == 32
        second = cache.access(0x1004, 4, R, 1)
        assert second.hit
        assert second.refill_bytes == 0
        assert cache.hits == 1 and cache.misses == 1

    def test_line_granularity(self):
        cache = make(line=32)
        cache.access(0x1000, 4, R, 0)
        assert cache.access(0x101F, 1, R, 1).hit  # same line
        assert not cache.access(0x1020, 4, R, 2).hit  # next line

    def test_lru_eviction(self):
        cache = make(capacity=128, line=32, ways=2)  # 2 sets
        sets = cache.sets
        stride = 32 * sets  # same set, different tags
        cache.access(0x0, 4, R, 0)
        cache.access(stride, 4, R, 1)
        cache.access(0x0, 4, R, 2)  # touch first -> second is LRU
        cache.access(2 * stride, 4, R, 3)  # evicts `stride`
        assert cache.access(0x0, 4, R, 4).hit
        assert not cache.access(stride, 4, R, 5).hit

    def test_direct_mapped_conflict(self):
        cache = make(capacity=128, line=32, ways=1)
        stride = 32 * cache.sets
        cache.access(0x0, 4, R, 0)
        cache.access(stride, 4, R, 1)
        assert not cache.access(0x0, 4, R, 2).hit

    def test_miss_ratio(self):
        cache = make()
        for i in range(8):
            cache.access(0x40 * i, 4, R, i)  # 8 distinct lines at line=32? 0x40 stride => every other line
        assert cache.miss_ratio == 1.0

    def test_reset_clears_state(self):
        cache = make()
        cache.access(0x1000, 4, R, 0)
        cache.reset()
        assert cache.hits == 0 and cache.misses == 0
        assert not cache.access(0x1000, 4, R, 0).hit


class TestWritePolicies:
    def test_write_back_dirty_eviction(self):
        cache = make(capacity=128, line=32, ways=1)
        stride = 32 * cache.sets
        cache.access(0x0, 4, W, 0)  # allocate + dirty
        response = cache.access(stride, 4, R, 1)  # evicts dirty line
        assert response.writeback_bytes == 32

    def test_write_back_clean_eviction_no_writeback(self):
        cache = make(capacity=128, line=32, ways=1)
        stride = 32 * cache.sets
        cache.access(0x0, 4, R, 0)
        response = cache.access(stride, 4, R, 1)
        assert response.writeback_bytes == 0

    def test_write_through_posts_every_write(self):
        cache = make(policy=WritePolicy.WRITE_THROUGH)
        cache.access(0x1000, 4, R, 0)
        response = cache.access(0x1000, 4, W, 1)
        assert response.hit
        assert response.writeback_bytes == 4

    def test_write_through_never_dirty(self):
        cache = make(capacity=128, line=32, ways=1, policy=WritePolicy.WRITE_THROUGH)
        stride = 32 * cache.sets
        cache.access(0x0, 4, W, 0)
        response = cache.access(stride, 4, R, 1)
        # Eviction carries no line writeback (write-through kept it clean).
        assert response.writeback_bytes == 0

    def test_write_miss_allocates(self):
        cache = make()
        response = cache.access(0x2000, 4, W, 0)
        assert not response.hit
        assert response.refill_bytes == 32
        assert cache.access(0x2000, 4, R, 1).hit


class TestModels:
    def test_area_grows_with_capacity(self):
        small = make(capacity=4096).area_gates
        large = make(capacity=32768).area_gates
        assert large > 4 * small

    def test_energy_grows_with_capacity_and_ways(self):
        assert make(capacity=32768).access_energy_nj > make(capacity=4096).access_energy_nj
        assert (
            Cache("c", 8192, 32, 4).access_energy_nj
            > Cache("c", 8192, 32, 1).access_energy_nj
        )
