"""Tests for the full exploration report renderer."""

import pytest

from repro.apex.explorer import ApexConfig
from repro.conex.explorer import ConExConfig
from repro.core.memorex import MemorExConfig, run_memorex
from repro.core.report import render_full_report
from repro.workloads import get_workload


@pytest.fixture(scope="module")
def result():
    workload = get_workload("vocoder", scale=0.3, seed=1)
    config = MemorExConfig(
        apex=ApexConfig(
            cache_options=(None, "cache_4k_16b_1w", "cache_8k_32b_2w"),
            stream_buffer_options=(None, "stream_buffer_4"),
            dma_options=(None,),
            map_indexed_to_sram=(False,),
            select_count=3,
        ),
        conex=ConExConfig(
            max_logical_connections=3,
            max_assignments_per_level=24,
            phase1_keep=4,
        ),
    )
    return run_memorex(workload, config=config)


def test_report_sections_present(result):
    report = render_full_report(result)
    assert "ConEx exploration report" in report
    assert "trace:" in report
    assert "APEX:" in report
    assert "ConEx:" in report
    assert "Final pareto designs" in report
    assert "knee-point recommendation" in report


def test_report_lists_every_pareto_design(result):
    report = render_full_report(result)
    for point in result.selected_points:
        assert point.label() in report


def test_report_mentions_structures(result):
    report = render_full_report(result)
    for struct in result.trace.structs:
        assert struct in report


def test_knee_is_one_of_the_pareto_designs(result):
    report = render_full_report(result)
    labels = [p.label() for p in result.selected_points]
    knee_line = next(
        line for line in report.splitlines() if "knee-point" in line
    )
    assert any(label in knee_line for label in labels)
