"""Unit tests for the instrumented LZW compress workload."""

import numpy as np
import pytest

from repro.trace.events import AccessKind
from repro.trace.patterns import AccessPattern
from repro.util.rng import make_rng
from repro.workloads import CompressWorkload
from repro.workloads.compress import (
    HTAB_ENTRY,
    TABLE_SIZE,
    _zipf_text,
)


@pytest.fixture(scope="module")
def trace():
    return CompressWorkload(scale=0.12, seed=3).trace()


class TestZipfText:
    def test_length(self):
        text = _zipf_text(make_rng(1), 2000)
        assert len(text) == 2000

    def test_lowercase_words(self):
        text = _zipf_text(make_rng(1), 500)
        assert all(97 <= b <= 122 or b == 32 for b in text)

    def test_repetition(self):
        text = _zipf_text(make_rng(1), 4000)
        words = text.split()
        assert len(set(words)) < len(words) / 2  # zipf head repeats


class TestCompressTrace:
    def test_expected_structures(self, trace):
        assert set(trace.structs) == {
            "input_stream",
            "output_stream",
            "hash_table",
            "code_table",
            "globals",
            "misc",
        }

    def test_input_stream_is_sequential_reads(self, trace):
        mask = trace.struct_mask("input_stream")
        addresses = trace.addresses[mask]
        assert list(np.diff(addresses)) == [1] * (len(addresses) - 1)
        assert (trace.kinds[mask] == int(AccessKind.READ)).all()

    def test_output_stream_is_writes(self, trace):
        mask = trace.struct_mask("output_stream")
        assert (trace.kinds[mask] == int(AccessKind.WRITE)).all()

    def test_hash_table_in_region(self, trace):
        mask = trace.struct_mask("hash_table")
        addresses = trace.addresses[mask]
        span = int(addresses.max() - addresses.min())
        assert span < TABLE_SIZE * HTAB_ENTRY

    def test_hash_dominates_traffic(self, trace):
        counts = trace.counts_by_struct()
        assert counts["hash_table"] > counts["input_stream"]
        # At least one probe (hash read) per input character.
        assert counts["hash_table"] >= counts["input_stream"]

    def test_code_table_reads_follow_hits(self, trace):
        counts = trace.counts_by_struct()
        # codetab touched at most once per htab probe.
        assert counts["code_table"] <= counts["hash_table"]

    def test_deterministic_across_runs(self):
        a = CompressWorkload(scale=0.05, seed=9).trace()
        b = CompressWorkload(scale=0.05, seed=9).trace()
        assert len(a) == len(b)
        assert (a.addresses == b.addresses).all()
        assert (a.kinds == b.kinds).all()

    def test_seed_changes_trace(self):
        a = CompressWorkload(scale=0.05, seed=1).trace()
        b = CompressWorkload(scale=0.05, seed=2).trace()
        assert len(a) != len(b) or not (a.addresses == b.addresses).all()

    def test_scale_grows_trace(self):
        small = CompressWorkload(scale=0.05, seed=1).trace()
        large = CompressWorkload(scale=0.2, seed=1).trace()
        assert len(large) > 2 * len(small)

    def test_hints_cover_all_structs(self, trace):
        hints = CompressWorkload(scale=0.1).pattern_hints
        assert set(hints) == set(trace.structs)
        assert hints["hash_table"] is AccessPattern.SELF_INDIRECT
