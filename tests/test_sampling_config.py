"""Unit tests for the time-sampling configuration."""

import pytest

from repro.errors import ConfigurationError
from repro.sim.sampling import SamplingConfig


def test_defaults_match_paper_ratio():
    config = SamplingConfig()
    assert config.off_ratio == 9  # the paper's 1/9 on/off ratio
    assert config.period == config.on_window * 10


def test_is_on_pattern():
    config = SamplingConfig(on_window=10, off_ratio=1, warmup=2)
    assert all(config.is_on(i) for i in range(10))
    assert not any(config.is_on(i) for i in range(10, 20))
    assert config.is_on(20)  # next period


def test_is_measured_excludes_warmup():
    config = SamplingConfig(on_window=10, off_ratio=1, warmup=3)
    assert not config.is_measured(0)
    assert not config.is_measured(2)
    assert config.is_measured(3)
    assert config.is_measured(9)
    assert not config.is_measured(10)


def test_zero_off_ratio_always_on():
    config = SamplingConfig(on_window=5, off_ratio=0, warmup=0)
    assert all(config.is_on(i) for i in range(50))


def test_validation():
    with pytest.raises(ConfigurationError):
        SamplingConfig(on_window=0)
    with pytest.raises(ConfigurationError):
        SamplingConfig(off_ratio=-1)
    with pytest.raises(ConfigurationError):
        SamplingConfig(on_window=10, warmup=10)
