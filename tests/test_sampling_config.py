"""Unit tests for the time-sampling configuration."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.sim.sampling import SamplingConfig


def test_defaults_match_paper_ratio():
    config = SamplingConfig()
    assert config.off_ratio == 9  # the paper's 1/9 on/off ratio
    assert config.period == config.on_window * 10


def test_is_on_pattern():
    config = SamplingConfig(on_window=10, off_ratio=1, warmup=2)
    assert all(config.is_on(i) for i in range(10))
    assert not any(config.is_on(i) for i in range(10, 20))
    assert config.is_on(20)  # next period


def test_is_measured_excludes_warmup():
    config = SamplingConfig(on_window=10, off_ratio=1, warmup=3)
    assert not config.is_measured(0)
    assert not config.is_measured(2)
    assert config.is_measured(3)
    assert config.is_measured(9)
    assert not config.is_measured(10)


def test_zero_off_ratio_always_on():
    config = SamplingConfig(on_window=5, off_ratio=0, warmup=0)
    assert all(config.is_on(i) for i in range(50))


@pytest.mark.parametrize(
    "config",
    [
        SamplingConfig(),
        SamplingConfig(on_window=10, off_ratio=1, warmup=3),
        SamplingConfig(on_window=5, off_ratio=0, warmup=0),
        SamplingConfig(on_window=7, off_ratio=3, warmup=2),
        SamplingConfig(on_window=1, off_ratio=9, warmup=0),
    ],
)
def test_masks_match_predicates_elementwise(config):
    """The materialized masks are the predicates, index by index."""
    length = 3 * config.period + 5
    on, measured = config.masks(length)
    assert len(on) == len(measured) == length
    assert on.dtype == measured.dtype == np.bool_
    assert on.tolist() == [config.is_on(i) for i in range(length)]
    assert measured.tolist() == [
        config.is_measured(i) for i in range(length)
    ]


@pytest.mark.parametrize(
    "config",
    [SamplingConfig(), SamplingConfig(on_window=16, off_ratio=4, warmup=5)],
)
def test_measured_is_subset_of_on(config):
    on, measured = config.masks(10 * config.period)
    assert not np.any(measured & ~on)


def test_masks_handle_short_lengths():
    config = SamplingConfig(on_window=100, off_ratio=9, warmup=10)
    on, measured = config.masks(3)  # shorter than one on-window
    assert on.tolist() == [True, True, True]
    assert measured.tolist() == [False, False, False]
    on, measured = config.masks(0)
    assert len(on) == len(measured) == 0


def test_validation():
    with pytest.raises(ConfigurationError):
        SamplingConfig(on_window=0)
    with pytest.raises(ConfigurationError):
        SamplingConfig(off_ratio=-1)
    with pytest.raises(ConfigurationError):
        SamplingConfig(on_window=10, warmup=10)
