"""Unit tests for memory architectures and the APEX explorer."""

import pytest

from repro.apex.architectures import MemoryArchitecture
from repro.apex.explorer import (
    ApexConfig,
    enumerate_architectures,
    explore_memory_architectures,
)
from repro.channels import Channel
from repro.errors import ConfigurationError, ExplorationError
from repro.trace.patterns import profile_patterns
from repro.util.pareto import is_pareto_point


class TestMemoryArchitecture:
    def test_mapping_and_default(self, mem_library, tiny_trace):
        cache = mem_library.get("cache_8k_32b_2w").instantiate("cache")
        sram = mem_library.get("sram_4k").instantiate("sram")
        dram = mem_library.get("dram").instantiate()
        arch = MemoryArchitecture(
            "a", [cache, sram], dram, {"table": "sram"}, "cache"
        )
        assert arch.module_for("table") == "sram"
        assert arch.module_for("stream") == "cache"
        assert arch.module("dram") is dram

    def test_duplicate_module_rejected(self, mem_library):
        cache_a = mem_library.get("cache_8k_32b_2w").instantiate("m")
        cache_b = mem_library.get("cache_4k_16b_1w").instantiate("m")
        dram = mem_library.get("dram").instantiate()
        with pytest.raises(ConfigurationError):
            MemoryArchitecture("a", [cache_a, cache_b], dram, {}, "dram")

    def test_reserved_name_rejected(self, mem_library):
        cache = mem_library.get("cache_8k_32b_2w").instantiate("cpu")
        dram = mem_library.get("dram").instantiate()
        with pytest.raises(ConfigurationError):
            MemoryArchitecture("a", [cache], dram, {}, "dram")

    def test_unknown_mapping_target_rejected(self, mem_library):
        dram = mem_library.get("dram").instantiate()
        with pytest.raises(ConfigurationError):
            MemoryArchitecture("a", [], dram, {"x": "ghost"}, "dram")

    def test_unknown_default_rejected(self, mem_library):
        dram = mem_library.get("dram").instantiate()
        with pytest.raises(ConfigurationError):
            MemoryArchitecture("a", [], dram, {}, "ghost")

    def test_channels_derived(self, mem_library, tiny_trace):
        cache = mem_library.get("cache_8k_32b_2w").instantiate("cache")
        sram = mem_library.get("sram_4k").instantiate("sram")
        dram = mem_library.get("dram").instantiate()
        arch = MemoryArchitecture(
            "a", [cache, sram], dram, {"table": "sram"}, "cache"
        )
        channels = set(arch.channels(tiny_trace))
        assert Channel("cpu", "cache") in channels
        assert Channel("cache", "dram") in channels
        assert Channel("cpu", "sram") in channels
        # SRAM holds its structure entirely: no backing channel.
        assert Channel("sram", "dram") not in channels

    def test_uncached_channel(self, mem_library, tiny_trace):
        dram = mem_library.get("dram").instantiate()
        arch = MemoryArchitecture("a", [], dram, {}, "dram")
        assert arch.channels(tiny_trace) == [Channel("cpu", "dram")]

    def test_unused_module_has_no_channel(self, mem_library, tiny_trace):
        cache = mem_library.get("cache_8k_32b_2w").instantiate("cache")
        sb = mem_library.get("stream_buffer_4").instantiate("sb")
        dram = mem_library.get("dram").instantiate()
        arch = MemoryArchitecture("a", [cache, sb], dram, {}, "cache")
        names = [c.name for c in arch.channels(tiny_trace)]
        assert "cpu->sb" not in names

    def test_validate_sram_capacity(self, mem_library, tiny_trace):
        sram = mem_library.get("sram_1k").instantiate("sram")
        dram = mem_library.get("dram").instantiate()
        # 'stream' in tiny_trace spans only 256 B: fits. 'table' tiny too.
        arch = MemoryArchitecture(
            "a", [sram], dram, {"stream": "sram", "table": "sram"}, "dram"
        )
        arch.validate(tiny_trace)

    def test_validate_sram_overflow(self, mem_library, compress_trace):
        sram = mem_library.get("sram_1k").instantiate("sram")
        dram = mem_library.get("dram").instantiate()
        arch = MemoryArchitecture(
            "a", [sram], dram, {"hash_table": "sram"}, "dram"
        )
        with pytest.raises(ConfigurationError):
            arch.validate(compress_trace)

    def test_validate_unknown_struct(self, mem_library, tiny_trace):
        dram = mem_library.get("dram").instantiate()
        arch = MemoryArchitecture("a", [], dram, {"ghost": "dram"}, "dram")
        with pytest.raises(ConfigurationError):
            arch.validate(tiny_trace)

    def test_area_sums_on_chip_only(self, mem_library):
        cache = mem_library.get("cache_8k_32b_2w").instantiate("cache")
        dram = mem_library.get("dram").instantiate()
        arch = MemoryArchitecture("a", [cache], dram, {}, "cache")
        assert arch.area_gates == cache.area_gates

    def test_describe(self, mem_library):
        cache = mem_library.get("cache_8k_32b_2w").instantiate("cache")
        dram = mem_library.get("dram").instantiate()
        arch = MemoryArchitecture("a", [cache], dram, {"x": "cache"}, "cache")
        text = arch.describe()
        assert "cache" in text and "default" in text


SMALL_CONFIG = ApexConfig(
    cache_options=(None, "cache_4k_16b_1w", "cache_16k_32b_2w"),
    stream_buffer_options=(None, "stream_buffer_4"),
    dma_options=(None, "si_dma_32"),
    map_indexed_to_sram=(False, True),
    select_count=4,
)


class TestEnumeration:
    def test_candidate_count(self, compress_trace, compress_workload, mem_library):
        profiles = profile_patterns(
            compress_trace, compress_workload.pattern_hints
        )
        candidates = enumerate_architectures(
            compress_trace, mem_library, profiles, SMALL_CONFIG
        )
        # 3 caches x 2 stream x 2 dma x 2 sram = 24
        assert len(candidates) == 24

    def test_uncached_baseline_present(
        self, compress_trace, compress_workload, mem_library
    ):
        profiles = profile_patterns(
            compress_trace, compress_workload.pattern_hints
        )
        candidates = enumerate_architectures(
            compress_trace, mem_library, profiles, SMALL_CONFIG
        )
        empty = [c for c in candidates if not c.modules]
        assert len(empty) == 1
        assert empty[0].default_module == "dram"

    def test_no_si_structs_skips_dma(self, mem_library):
        from repro.trace.events import TraceBuilder

        builder = TraceBuilder("s")
        for i in range(256):
            builder.read(0x1000 + 4 * i, 4, "stream")
        trace = builder.build()
        profiles = profile_patterns(trace)
        config = ApexConfig(
            cache_options=(None,),
            stream_buffer_options=(None, "stream_buffer_4"),
            dma_options=(None, "si_dma_16"),
            map_indexed_to_sram=(False,),
        )
        candidates = enumerate_architectures(
            trace, mem_library, profiles, config
        )
        # One stream struct, no self-indirect struct: DMA options
        # collapse and only the buffer choice remains.
        assert len(candidates) == 2

    def test_all_candidates_validate(
        self, compress_trace, compress_workload, mem_library
    ):
        profiles = profile_patterns(
            compress_trace, compress_workload.pattern_hints
        )
        for arch in enumerate_architectures(
            compress_trace, mem_library, profiles, SMALL_CONFIG
        ):
            arch.validate(compress_trace)


class TestExploration:
    @pytest.fixture(scope="class")
    def result(self, compress_trace, compress_workload, mem_library):
        return explore_memory_architectures(
            compress_trace,
            mem_library,
            SMALL_CONFIG,
            hints=compress_workload.pattern_hints,
        )

    def test_selection_is_pareto(self, result):
        vectors = [e.objectives for e in result.evaluated]
        for selected in result.selected:
            assert is_pareto_point(selected.objectives, vectors)

    def test_selection_bounded(self, result):
        assert 1 <= len(result.selected) <= SMALL_CONFIG.select_count

    def test_selection_sorted_by_cost(self, result):
        costs = [e.cost_gates for e in result.selected]
        assert costs == sorted(costs)

    def test_miss_ratio_decreases_along_front(self, result):
        ratios = [e.miss_ratio for e in result.selected]
        assert ratios == sorted(ratios, reverse=True)

    def test_bad_select_count(self, compress_trace, mem_library):
        with pytest.raises(ExplorationError):
            explore_memory_architectures(
                compress_trace,
                mem_library,
                ApexConfig(select_count=0),
            )
