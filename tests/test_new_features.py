"""Tests for DRAM banking, energy breakdown, and the coverage CLI."""

import pytest

from repro.apex.architectures import MemoryArchitecture
from repro.errors import ConfigurationError
from repro.memory.dram import Dram
from repro.sim import simulate
from repro.trace.events import AccessKind, TraceBuilder

R = AccessKind.READ


class TestDramBanking:
    def test_banks_validated(self):
        with pytest.raises(ConfigurationError):
            Dram("d", banks=3)
        with pytest.raises(ConfigurationError):
            Dram("d", banks=0)

    def test_interleaved_streams_conflict_on_one_bank(self):
        """Two streams alternating rows thrash a single open row but
        coexist on a banked part."""
        single = Dram("s", banks=1, row_bytes=1024)
        banked = Dram("b", banks=2, row_bytes=1024)
        for i in range(50):
            for dram in (single, banked):
                dram.access(0x0000 + 32 * i, 32, R, i)  # row 0 -> bank 0
                dram.access(0x0400 + 32 * i, 32, R, i)  # row 1 -> bank 1
        assert banked.page_hits > single.page_hits

    def test_same_row_hits_regardless_of_banks(self):
        banked = Dram("b", banks=4)
        banked.access(0x100, 32, R, 0)
        assert banked.access(0x120, 32, R, 1).latency == banked.page_hit_latency

    def test_reset_clears_all_banks(self):
        banked = Dram("b", banks=4)
        for i in range(4):
            banked.access(i * 1024, 32, R, i)
        banked.reset()
        for i in range(4):
            assert banked.latency_for(i * 1024) == banked.core_latency

    def test_banked_preset_in_library(self, mem_library):
        dram = mem_library.get("dram_4bank").instantiate()
        assert isinstance(dram, Dram)
        assert dram.banks == 4

    def test_apex_dram_preset_knob(self, mem_library, compress_trace, compress_workload):
        from repro.apex.explorer import ApexConfig, explore_memory_architectures

        config = ApexConfig(
            cache_options=("cache_4k_16b_1w",),
            stream_buffer_options=(None,),
            dma_options=(None,),
            map_indexed_to_sram=(False,),
            select_count=1,
            dram_preset="dram_4bank",
        )
        result = explore_memory_architectures(
            compress_trace, mem_library, config, hints=compress_workload.pattern_hints
        )
        assert all(e.architecture.dram.banks == 4 for e in result.evaluated)


class TestEnergyBreakdown:
    def test_breakdown_sums_to_total(self, tiny_trace, cache_architecture):
        result = simulate(tiny_trace, cache_architecture)
        assert sum(result.energy_breakdown.values()) == pytest.approx(
            result.avg_energy_nj
        )
        assert set(result.energy_breakdown) == {"modules", "dram", "connectivity"}

    def test_ideal_connectivity_has_zero_wire_energy(
        self, tiny_trace, cache_architecture
    ):
        result = simulate(tiny_trace, cache_architecture)
        assert result.energy_breakdown["connectivity"] == 0.0
        assert result.connectivity_energy_fraction == 0.0

    def test_connectivity_fraction_small(
        self, compress_trace, cache_architecture, conn_library
    ):
        """The paper's observation: connectivity power is small
        compared to the memory modules/DRAM."""
        from tests.conftest import simple_connectivity

        conn = simple_connectivity(
            cache_architecture, compress_trace, conn_library
        )
        result = simulate(compress_trace, cache_architecture, conn)
        assert 0.0 < result.connectivity_energy_fraction < 0.35

    def test_uncached_energy_is_dram_dominated(self, tiny_trace, mem_library):
        dram = mem_library.get("dram").instantiate()
        arch = MemoryArchitecture("u", [], dram, {}, "dram")
        result = simulate(tiny_trace, arch)
        assert result.energy_breakdown["dram"] > 0.9 * result.avg_energy_nj
        assert result.energy_breakdown["modules"] == 0.0


class TestCoverageCli:
    def test_coverage_command(self, capsys):
        from repro.cli import main

        assert main(["coverage", "vocoder", "--scale", "0.2"]) == 0
        out = capsys.readouterr().out
        assert "Pruned" in out
        assert "Neighborhood" in out
        assert "Full" in out
        assert "100%" in out  # Full always covers itself
