"""Integration tests for the command-line interface."""

import json

import pytest

from repro.cli import main


class TestListingCommands:
    def test_workloads(self, capsys):
        assert main(["workloads"]) == 0
        out = capsys.readouterr().out
        for name in ("compress", "li", "vocoder", "dct", "synthetic"):
            assert name in out

    def test_libraries(self, capsys):
        assert main(["libraries"]) == 0
        out = capsys.readouterr().out
        assert "memory IP library" in out
        assert "connectivity IP library" in out
        assert "cache_8k_32b_2w" in out
        assert "ahb" in out


class TestTraceCommand:
    def test_profile_printed(self, capsys):
        assert main(["trace", "vocoder", "--scale", "0.3"]) == 0
        out = capsys.readouterr().out
        assert "accesses" in out
        assert "speech_in" in out

    def test_save_round_trips(self, tmp_path, capsys):
        path = tmp_path / "trace.npz"
        assert main(["trace", "dct", "--scale", "0.3", "--save", str(path)]) == 0
        assert path.exists()
        from repro.io import load_trace

        trace = load_trace(path)
        assert len(trace) > 0

    def test_unknown_workload_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["trace", "quake"])


class TestApexCommand:
    def test_selection_printed(self, capsys):
        assert main(["apex", "vocoder", "--scale", "0.3", "--select", "3"]) == 0
        out = capsys.readouterr().out
        assert "selected 3" in out or "selected" in out
        assert "gates" in out


class TestExploreCommand:
    def test_full_report_and_exports(self, tmp_path, capsys):
        csv_path = tmp_path / "out.csv"
        json_path = tmp_path / "out.json"
        report_path = tmp_path / "report.txt"
        code = main(
            [
                "explore",
                "vocoder",
                "--scale",
                "0.3",
                "--select",
                "3",
                "--keep",
                "4",
                "--csv",
                str(csv_path),
                "--json",
                str(json_path),
                "--report",
                str(report_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "ConEx exploration report" in out
        assert "knee-point recommendation" in out
        assert "Final pareto designs" in out
        assert csv_path.exists() and json_path.exists()
        payload = json.loads(json_path.read_text())
        assert payload["design_points"]
        assert "knee-point recommendation" in report_path.read_text()
