"""Further estimator behaviour tests: saturation, sharing, split buses."""

import pytest

from repro.apex.architectures import MemoryArchitecture
from repro.channels import Channel
from repro.conex.estimator import estimate_design
from repro.connectivity.architecture import (
    ConnectivityArchitecture,
    build_cluster,
)
from repro.sim import simulate
from repro.trace.events import TraceBuilder


@pytest.fixture(scope="module")
def setup():
    from repro.memory.library import default_memory_library

    library = default_memory_library()
    builder = TraceBuilder("est")
    # A miss-heavy pattern: strided reads defeating a small cache.
    for i in range(4000):
        builder.read(0x1_0000 + (i * 4096 + i * 16) % 262144, 8, "hot")
        builder.compute(2)
    trace = builder.build()
    cache = library.get("cache_4k_16b_1w").instantiate("cache")
    dram = library.get("dram").instantiate()
    memory = MemoryArchitecture("m", [cache], dram, {}, "cache")
    profile = simulate(trace, memory)
    return trace, memory, profile, library


def connectivity(conn_library, cpu_preset, off_preset, name="c"):
    return ConnectivityArchitecture(
        name,
        [
            build_cluster(
                [Channel("cpu", "cache")],
                cpu_preset,
                conn_library.get(cpu_preset).instantiate(),
            ),
            build_cluster(
                [Channel("cache", "dram")],
                off_preset,
                conn_library.get(off_preset).instantiate(),
            ),
        ],
    )


class TestEstimatorBehaviour:
    def test_wider_offchip_estimates_faster(self, setup, conn_library):
        _, memory, profile, _ = setup
        narrow = estimate_design(
            memory, connectivity(conn_library, "ahb", "offchip_16"), profile
        )
        wide = estimate_design(
            memory, connectivity(conn_library, "ahb", "offchip_32"), profile
        )
        assert wide.avg_latency < narrow.avg_latency

    def test_channel_waits_reported(self, setup, conn_library):
        _, memory, profile, _ = setup
        estimate = estimate_design(
            memory, connectivity(conn_library, "asb", "offchip_16"), profile
        )
        assert "cache->dram" in estimate.channel_waits
        # The miss-heavy pattern loads the narrow off-chip bus hardest.
        assert (
            estimate.channel_waits["cache->dram"]
            >= estimate.channel_waits["cpu->cache"]
        )

    def test_estimates_track_simulation_across_offchip(self, setup, conn_library):
        trace, memory, profile, _ = setup
        for off in ("offchip_16", "offchip_32"):
            conn = connectivity(conn_library, "ahb", off)
            estimate = estimate_design(memory, conn, profile)
            result = simulate(trace, memory, conn)
            # Same ballpark: within a factor of two on this load.
            assert estimate.avg_latency < 2 * result.avg_latency
            assert result.avg_latency < 2 * estimate.avg_latency

    def test_energy_estimate_close_to_simulation(self, setup, conn_library):
        trace, memory, profile, _ = setup
        conn = connectivity(conn_library, "ahb", "offchip_16")
        estimate = estimate_design(memory, conn, profile)
        result = simulate(trace, memory, conn)
        assert estimate.avg_energy_nj == pytest.approx(
            result.avg_energy_nj, rel=0.25
        )

    def test_objectives_tuple(self, setup, conn_library):
        _, memory, profile, _ = setup
        estimate = estimate_design(
            memory, connectivity(conn_library, "mux", "offchip_16"), profile
        )
        assert estimate.objectives == (
            estimate.cost_gates,
            estimate.avg_latency,
            estimate.avg_energy_nj,
        )
