"""Tests for the posted-writes CPU option and write-through presets."""

import pytest

from repro.apex.architectures import MemoryArchitecture
from repro.memory.cache import WritePolicy
from repro.sim import simulate
from repro.trace.events import AccessKind, TraceBuilder


def write_heavy_trace():
    builder = TraceBuilder("writes")
    for i in range(300):
        builder.write(0x1000 + 32 * (i % 64), 8, "buf")
        builder.compute(2)
    for i in range(100):
        builder.read(0x1000 + 32 * (i % 64), 8, "buf")
        builder.compute(2)
    return builder.build()


@pytest.fixture
def arch(mem_library):
    cache = mem_library.get("cache_4k_16b_1w").instantiate("cache")
    dram = mem_library.get("dram").instantiate()
    return MemoryArchitecture("a", [cache], dram, {}, "cache")


class TestPostedWrites:
    def test_posted_never_slower(self, arch):
        trace = write_heavy_trace()
        blocking = simulate(trace, arch)
        posted = simulate(trace, arch, posted_writes=True)
        assert posted.avg_latency <= blocking.avg_latency

    def test_posted_helps_write_heavy_traces(self, arch):
        trace = write_heavy_trace()
        blocking = simulate(trace, arch)
        posted = simulate(trace, arch, posted_writes=True)
        assert posted.avg_latency < 0.9 * blocking.avg_latency
        assert posted.total_cycles < blocking.total_cycles

    def test_traffic_unchanged(self, arch):
        """Posting changes CPU stalls, not what moves on the channels."""
        trace = write_heavy_trace()
        blocking = simulate(trace, arch)
        posted = simulate(trace, arch, posted_writes=True)
        for name, traffic in blocking.channels.items():
            assert posted.channels[name].bytes_moved == traffic.bytes_moved
        assert posted.miss_ratio == blocking.miss_ratio

    def test_read_only_trace_unaffected(self, arch, tiny_trace):
        # tiny_trace has writes to 'table'; build a pure-read trace.
        builder = TraceBuilder("reads")
        for i in range(100):
            builder.read(0x1000 + 4 * i, 4, "s")
        trace = builder.build()
        blocking = simulate(trace, arch)
        posted = simulate(trace, arch, posted_writes=True)
        assert posted.avg_latency == blocking.avg_latency

    def test_deterministic(self, arch):
        trace = write_heavy_trace()
        first = simulate(trace, arch, posted_writes=True)
        second = simulate(trace, arch, posted_writes=True)
        assert first.avg_latency == second.avg_latency


class TestWriteThroughPresets:
    def test_presets_build_write_through(self, mem_library):
        for name in ("cache_8k_32b_2w_wt", "cache_16k_32b_2w_wt"):
            cache = mem_library.get(name).instantiate()
            assert cache.write_policy is WritePolicy.WRITE_THROUGH

    def test_apex_can_enumerate_wt_caches(
        self, compress_trace, compress_workload, mem_library
    ):
        from repro.apex.explorer import ApexConfig, explore_memory_architectures

        config = ApexConfig(
            cache_options=("cache_8k_32b_2w", "cache_8k_32b_2w_wt"),
            stream_buffer_options=(None,),
            dma_options=(None,),
            map_indexed_to_sram=(False,),
            select_count=2,
        )
        result = explore_memory_architectures(
            compress_trace, mem_library, config,
            hints=compress_workload.pattern_hints,
        )
        policies = {
            m.write_policy
            for e in result.evaluated
            for m in e.architecture.modules.values()
        }
        assert policies == {WritePolicy.WRITE_BACK, WritePolicy.WRITE_THROUGH}

    def test_wt_moves_more_backing_bytes_on_write_heavy(self, mem_library):
        trace = write_heavy_trace()
        results = {}
        for preset in ("cache_8k_32b_2w", "cache_8k_32b_2w_wt"):
            cache = mem_library.get(preset).instantiate("cache")
            dram = mem_library.get("dram").instantiate()
            arch = MemoryArchitecture("a", [cache], dram, {}, "cache")
            results[preset] = simulate(trace, arch)
        wb = results["cache_8k_32b_2w"].channels["cache->dram"].bytes_moved
        wt = results["cache_8k_32b_2w_wt"].channels["cache->dram"].bytes_moved
        assert wt > wb
