"""Unit tests for SRAM, stream buffer, self-indirect DMA, and DRAM."""

import pytest

from repro.errors import ConfigurationError
from repro.memory.dma import SelfIndirectDma
from repro.memory.dram import Dram
from repro.memory.sram import Sram
from repro.memory.stream_buffer import StreamBuffer
from repro.trace.events import AccessKind

R, W = AccessKind.READ, AccessKind.WRITE


class TestSram:
    def test_always_hits(self):
        sram = Sram("s", 4096)
        for i in range(10):
            response = sram.access(0x100 + i * 8, 8, R, i)
            assert response.hit
            assert response.refill_bytes == 0
        assert sram.accesses == 10

    def test_latency(self):
        assert Sram("s", 4096, access_latency=2).access(0, 4, R, 0).latency == 2

    def test_bad_capacity(self):
        with pytest.raises(ConfigurationError):
            Sram("s", 0)

    def test_reset(self):
        sram = Sram("s", 1024)
        sram.access(0, 4, R, 0)
        sram.reset()
        assert sram.accesses == 0

    def test_area_monotone(self):
        assert Sram("a", 8192).area_gates > Sram("b", 1024).area_gates


class TestStreamBuffer:
    def test_cold_start_miss_then_sequential_hits(self):
        buffer = StreamBuffer("sb", depth=4, line_size=32)
        first = buffer.access(0x1000, 4, R, 0)
        assert not first.hit
        assert first.refill_bytes == 32
        assert first.prefetch_bytes == 3 * 32
        for i in range(1, 32):
            assert buffer.access(0x1000 + 4 * i, 4, R, i).hit

    def test_window_advance_prefetches(self):
        buffer = StreamBuffer("sb", depth=4, line_size=32)
        buffer.access(0x1000, 4, R, 0)
        response = buffer.access(0x1020, 4, R, 1)  # next line
        assert response.hit
        assert response.prefetch_bytes == 32

    def test_jump_outside_window_misses(self):
        buffer = StreamBuffer("sb", depth=4, line_size=32)
        buffer.access(0x1000, 4, R, 0)
        response = buffer.access(0x9000, 4, R, 1)
        assert not response.hit
        assert response.refill_bytes == 32

    def test_backward_jump_misses(self):
        buffer = StreamBuffer("sb", depth=4, line_size=32)
        buffer.access(0x1000, 4, R, 0)
        assert not buffer.access(0x0800, 4, R, 1).hit

    def test_writes_stream_out(self):
        buffer = StreamBuffer("sb", depth=4, line_size=32)
        first = buffer.access(0x1000, 4, W, 0)
        assert first.writeback_bytes == 4  # posted
        assert first.refill_bytes == 0  # no fetch for write streams
        response = buffer.access(0x1020, 4, W, 1)
        assert response.hit
        assert response.writeback_bytes == 32  # line crossed

    def test_miss_ratio_low_for_streams(self):
        buffer = StreamBuffer("sb", depth=4, line_size=32)
        for i in range(400):
            buffer.access(0x1000 + 4 * i, 4, R, i)
        assert buffer.miss_ratio < 0.01

    def test_bad_geometry(self):
        with pytest.raises(ConfigurationError):
            StreamBuffer("sb", depth=0)
        with pytest.raises(ConfigurationError):
            StreamBuffer("sb", line_size=24)


class TestSelfIndirectDma:
    def test_unprimed_acts_as_node_cache(self):
        dma = SelfIndirectDma("d", entries=4, node_size=16, lookahead=2)
        assert not dma.access(0x100, 8, R, 0).hit
        assert dma.access(0x108, 8, R, 1).hit  # same node

    def test_primed_prefetch_hits_chain(self):
        dma = SelfIndirectDma("d", entries=8, node_size=16, lookahead=2)
        dma.backing_latency_hint = 5
        chain = [0x100, 0x300, 0x500, 0x700, 0x900, 0xB00]
        dma.prime(chain)
        tick = 0
        responses = []
        for address in chain:
            responses.append(dma.access(address, 8, R, tick))
            tick += 20  # slow CPU: prefetches always ready
        assert not responses[0].hit  # cold
        assert all(r.hit for r in responses[1:])

    def test_fast_chase_stalls(self):
        dma = SelfIndirectDma("d", entries=8, node_size=16, lookahead=1)
        dma.backing_latency_hint = 50
        chain = [0x100, 0x300, 0x500, 0x700]
        dma.prime(chain)
        dma.access(0x100, 8, R, 0)
        response = dma.access(0x300, 8, R, 2)  # prefetch not ready yet
        assert response.hit
        assert response.latency > 40  # stalled waiting for the prefetch
        assert dma.stall_cycles > 0

    def test_eviction_pressure(self):
        dma = SelfIndirectDma("d", entries=2, node_size=16, lookahead=0)
        addresses = [0x100, 0x200, 0x300, 0x100]
        dma.prime(addresses)
        for i, address in enumerate(addresses):
            last = dma.access(address, 8, R, 100 * i)
        assert not last.hit  # 0x100 was evicted by 0x200/0x300

    def test_prefetch_counts_bytes(self):
        dma = SelfIndirectDma("d", entries=8, node_size=16, lookahead=2)
        dma.prime([0x100, 0x300, 0x500])
        response = dma.access(0x100, 8, R, 0)
        assert response.prefetch_bytes == 32  # two successors fetched

    def test_write_posts_writeback(self):
        dma = SelfIndirectDma("d", entries=4, node_size=16)
        response = dma.access(0x100, 8, W, 0)
        assert response.writeback_bytes == 8

    def test_reset(self):
        dma = SelfIndirectDma("d", entries=4)
        dma.prime([0x100, 0x200])
        dma.access(0x100, 8, R, 0)
        dma.reset()
        assert dma.hits == 0 and dma.misses == 0
        assert not dma.access(0x100, 8, R, 0).hit

    def test_bad_geometry(self):
        with pytest.raises(ConfigurationError):
            SelfIndirectDma("d", entries=0)
        with pytest.raises(ConfigurationError):
            SelfIndirectDma("d", node_size=12)
        with pytest.raises(ConfigurationError):
            SelfIndirectDma("d", lookahead=-1)


class TestDram:
    def test_page_hit_vs_miss(self):
        dram = Dram("m", core_latency=20, page_hit_latency=8, row_bytes=1024)
        first = dram.access(0x1000, 32, R, 0)
        assert first.latency == 20
        second = dram.access(0x1100, 32, R, 1)  # same 1 KiB row
        assert second.latency == 8
        third = dram.access(0x9000, 32, R, 2)
        assert third.latency == 20
        assert dram.page_hits == 1

    def test_latency_for_peek_does_not_change_state(self):
        dram = Dram("m")
        dram.access(0x1000, 32, R, 0)
        peek = dram.latency_for(0x9000)
        assert peek == dram.core_latency
        assert dram.latency_for(0x1000) == dram.page_hit_latency

    def test_no_on_chip_area(self):
        assert Dram("m").area_gates == 0.0
        assert Dram("m").on_chip is False

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            Dram("m", core_latency=5, page_hit_latency=10)
        with pytest.raises(ConfigurationError):
            Dram("m", row_bytes=1000)

    def test_reset(self):
        dram = Dram("m")
        dram.access(0x1000, 32, R, 0)
        dram.reset()
        assert dram.accesses == 0
        assert dram.access(0x1000, 32, R, 0).latency == dram.core_latency
