"""Unit tests for AddressMap, MiscTraffic, and the workload registry."""

import pytest

from repro.errors import ConfigurationError
from repro.trace.events import TraceBuilder
from repro.util.rng import make_rng
from repro.workloads import get_workload, workload_names
from repro.workloads.base import AddressMap, MiscTraffic


class TestAddressMap:
    def test_alignment(self):
        layout = AddressMap(base=0x1000, alignment=64)
        a = layout.allocate("a", 100)
        b = layout.allocate("b", 10)
        assert a % 64 == 0
        assert b % 64 == 0
        assert b >= a + 100

    def test_no_overlap(self):
        layout = AddressMap()
        regions = [layout.allocate(f"r{i}", 1000 + i) for i in range(10)]
        for i in range(9):
            base, size = layout.region(f"r{i}")
            next_base, _ = layout.region(f"r{i + 1}")
            assert base + size <= next_base
        assert regions == sorted(regions)

    def test_duplicate_name_rejected(self):
        layout = AddressMap()
        layout.allocate("a", 16)
        with pytest.raises(ConfigurationError):
            layout.allocate("a", 16)

    def test_zero_size_rejected(self):
        with pytest.raises(ConfigurationError):
            AddressMap().allocate("a", 0)

    def test_non_power_of_two_alignment_rejected(self):
        with pytest.raises(ConfigurationError):
            AddressMap(alignment=48)

    def test_regions_mapping(self):
        layout = AddressMap()
        layout.allocate("a", 32)
        assert "a" in layout.regions
        assert layout.regions["a"][1] == 32


class TestMiscTraffic:
    def make(self, footprint=4096, write_fraction=0.25):
        builder = TraceBuilder("m")
        misc = MiscTraffic(
            builder,
            make_rng(1),
            base=0x10000,
            footprint=footprint,
            write_fraction=write_fraction,
        )
        return builder, misc

    def test_accesses_stay_in_region(self):
        builder, misc = self.make(footprint=4096)
        for _ in range(500):
            misc.access()
        trace = builder.build()
        assert trace.addresses.min() >= 0x10000
        assert trace.addresses.max() < 0x10000 + 4096

    def test_zipf_concentration(self):
        builder, misc = self.make(footprint=65536)
        for _ in range(2000):
            misc.access()
        trace = builder.build()
        counts = {}
        for address in trace.addresses:
            counts[int(address)] = counts.get(int(address), 0) + 1
        top = sorted(counts.values(), reverse=True)[:10]
        # The ten hottest slots carry a disproportionate share.
        assert sum(top) > 0.2 * 2000

    def test_write_fraction_respected(self):
        builder, misc = self.make(write_fraction=0.5)
        for _ in range(2000):
            misc.access()
        trace = builder.build()
        writes = int((trace.kinds == 1).sum())
        assert 0.4 < writes / 2000 < 0.6

    def test_bad_footprint_rejected(self):
        builder = TraceBuilder("m")
        with pytest.raises(ConfigurationError):
            MiscTraffic(builder, make_rng(1), 0, footprint=4)

    def test_bad_write_fraction_rejected(self):
        builder = TraceBuilder("m")
        with pytest.raises(ConfigurationError):
            MiscTraffic(builder, make_rng(1), 0, 4096, write_fraction=1.5)


class TestRegistry:
    def test_known_workloads(self):
        assert set(workload_names()) >= {"compress", "li", "vocoder", "synthetic"}

    def test_get_workload(self):
        workload = get_workload("vocoder", scale=0.5, seed=3)
        assert workload.name == "vocoder"
        assert workload.scale == 0.5
        assert workload.seed == 3

    def test_unknown_name_raises(self):
        with pytest.raises(ConfigurationError):
            get_workload("quake")

    def test_bad_scale_rejected(self):
        with pytest.raises(ConfigurationError):
            get_workload("vocoder", scale=0.0)
