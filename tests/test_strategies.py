"""Integration tests for the Pruned / Neighborhood / Full strategies.

Uses a deliberately tiny design space so Full stays fast; the point is
the Table 2 relationships: Full has 100% coverage by construction,
Pruned is fastest, Neighborhood sits between.
"""

import pytest

from repro.apex.explorer import ApexConfig
from repro.conex.explorer import ConExConfig
from repro.core.strategies import (
    coverage_rows,
    run_full,
    run_neighborhood,
    run_pruned,
)

APEX_CONFIG = ApexConfig(
    cache_options=(None, "cache_4k_16b_1w", "cache_16k_32b_2w"),
    stream_buffer_options=(None, "stream_buffer_4"),
    dma_options=(None,),
    map_indexed_to_sram=(False,),
    select_count=3,
)

CONEX_CONFIG = ConExConfig(
    max_logical_connections=3,
    max_assignments_per_level=24,
    phase1_keep=4,
)


@pytest.fixture(scope="module")
def outcomes(mem_library_module, conn_library_module):
    from repro.workloads import get_workload

    workload = get_workload("vocoder", scale=0.3, seed=7)
    trace = workload.trace()
    hints = dict(workload.pattern_hints)
    common = (
        trace,
        mem_library_module,
        conn_library_module,
        APEX_CONFIG,
        CONEX_CONFIG,
    )
    pruned = run_pruned(*common, hints=hints)
    neighborhood = run_neighborhood(*common, hints=hints)
    full = run_full(*common, hints=hints)
    return pruned, neighborhood, full


@pytest.fixture(scope="module")
def mem_library_module():
    from repro.memory.library import default_memory_library

    return default_memory_library()


@pytest.fixture(scope="module")
def conn_library_module():
    from repro.connectivity.library import default_connectivity_library

    return default_connectivity_library()


class TestStrategyRelations:
    def test_simulation_counts_ordered(self, outcomes):
        pruned, neighborhood, full = outcomes
        # Full covers the most enumerated points; Neighborhood adds
        # one-swap points on top of Pruned (in a tiny test space the
        # swaps can rival Full's thinned enumeration, so only the
        # Pruned relations are strict).
        assert len(full.simulated) > len(pruned.simulated)
        assert len(neighborhood.simulated) > len(pruned.simulated)

    def test_pruned_subset_of_full_space(self, outcomes):
        pruned, _, full = outcomes
        full_vectors = {p.simulated_objectives for p in full.simulated}
        for point in pruned.simulated:
            assert point.simulated_objectives in full_vectors

    def test_neighborhood_superset_of_selected_memories(self, outcomes):
        pruned, neighborhood, _ = outcomes
        pruned_memories = {p.memory_name for p in pruned.simulated}
        neighborhood_memories = {p.memory_name for p in neighborhood.simulated}
        assert pruned_memories <= neighborhood_memories

    def test_all_paretos_nonempty(self, outcomes):
        for outcome in outcomes:
            assert outcome.pareto


class TestCoverage:
    def test_full_covers_itself(self, outcomes):
        _, _, full = outcomes
        rows = coverage_rows(full, [])
        assert rows[-1].strategy == "Full"
        assert rows[-1].coverage_percent == 100.0
        assert rows[-1].distances == (0.0, 0.0, 0.0)

    def test_row_ordering_and_fields(self, outcomes):
        pruned, neighborhood, full = outcomes
        rows = coverage_rows(full, [pruned, neighborhood])
        assert [r.strategy for r in rows] == ["Pruned", "Neighborhood", "Full"]
        for row in rows:
            assert 0.0 <= row.coverage_percent <= 100.0
            assert row.seconds > 0
            assert len(row.distances) == 3

    def test_neighborhood_covers_at_least_pruned(self, outcomes):
        pruned, neighborhood, full = outcomes
        rows = coverage_rows(full, [pruned, neighborhood])
        by_name = {r.strategy: r for r in rows}
        assert (
            by_name["Neighborhood"].coverage_percent
            >= by_name["Pruned"].coverage_percent
        )

    def test_pruned_finds_some_pareto_points(self, outcomes):
        pruned, _, full = outcomes
        rows = coverage_rows(full, [pruned])
        assert rows[0].coverage_percent > 0.0

    def test_missed_points_have_close_replacements(self, outcomes):
        """The paper's claim: missed pareto points are approximated by
        nearby explored designs (small average distance)."""
        pruned, _, full = outcomes
        rows = coverage_rows(full, [pruned])
        pruned_row = rows[0]
        if pruned_row.coverage_percent < 100.0:
            assert all(d < 60.0 for d in pruned_row.distances)
