"""Edge-case and failure-injection tests for the simulator."""

import pytest

from repro.apex.architectures import MemoryArchitecture
from repro.memory.cache import Cache, WritePolicy
from repro.memory.dma import SelfIndirectDma
from repro.sim import SamplingConfig, simulate
from repro.trace.events import TraceBuilder
from tests.conftest import simple_connectivity


def single_access_trace():
    builder = TraceBuilder("single")
    builder.read(0x1000, 4, "x")
    return builder.build()


def all_writes_trace():
    builder = TraceBuilder("writes")
    for i in range(200):
        builder.write(0x1000 + 16 * i, 8, "buf")
    return builder.build()


def burst_trace():
    """Back-to-back accesses with zero compute gaps."""
    builder = TraceBuilder("burst")
    for i in range(300):
        builder.read(0x1000 + 64 * (i % 50), 4, "hot")
    return builder.build()


class TestDegenerateTraces:
    def test_single_access(self, mem_library, conn_library):
        trace = single_access_trace()
        cache = mem_library.get("cache_4k_16b_1w").instantiate("cache")
        dram = mem_library.get("dram").instantiate()
        arch = MemoryArchitecture("a", [cache], dram, {}, "cache")
        conn = simple_connectivity(arch, trace, conn_library)
        result = simulate(trace, arch, conn)
        assert result.accesses == 1
        assert result.miss_ratio == 1.0  # cold miss
        assert result.avg_latency > 1.0

    def test_all_writes(self, mem_library, conn_library):
        trace = all_writes_trace()
        cache = mem_library.get("cache_4k_16b_1w").instantiate("cache")
        dram = mem_library.get("dram").instantiate()
        arch = MemoryArchitecture("a", [cache], dram, {}, "cache")
        conn = simple_connectivity(arch, trace, conn_library)
        result = simulate(trace, arch, conn)
        assert result.accesses == 200
        assert result.total_cycles >= trace.duration

    def test_zero_gap_burst_contention(self, mem_library, conn_library):
        trace = burst_trace()
        cache = mem_library.get("cache_4k_16b_1w").instantiate("cache")
        dram = mem_library.get("dram").instantiate()
        arch = MemoryArchitecture("a", [cache], dram, {}, "cache")
        ideal = simulate(trace, arch)
        conn = simple_connectivity(arch, trace, conn_library, cpu_preset="apb")
        real = simulate(trace, arch, conn)
        # With zero think time, connection latency shows fully.
        assert real.avg_latency > ideal.avg_latency + 1.0

    def test_large_access_sizes(self, mem_library, conn_library):
        builder = TraceBuilder("wide")
        for i in range(50):
            builder.read(0x1000 + 64 * i, 64, "wide")  # full-line reads
        trace = builder.build()
        cache = Cache("cache", 4096, line_size=64, associativity=1)
        dram = mem_library.get("dram").instantiate()
        arch = MemoryArchitecture("a", [cache], dram, {}, "cache")
        conn = simple_connectivity(arch, trace, conn_library)
        result = simulate(trace, arch, conn)
        assert result.accesses == 50
        cpu = result.channels["cpu->cache"]
        assert cpu.bytes_moved == 50 * 64


class TestWriteThroughArchitecture:
    def test_write_through_generates_more_backing_traffic(
        self, mem_library, conn_library
    ):
        trace = all_writes_trace()
        dram_a = mem_library.get("dram").instantiate()
        dram_b = mem_library.get("dram").instantiate()
        wb = Cache("cache", 4096, 16, 1, WritePolicy.WRITE_BACK)
        wt = Cache("cache", 4096, 16, 1, WritePolicy.WRITE_THROUGH)
        arch_wb = MemoryArchitecture("wb", [wb], dram_a, {}, "cache")
        arch_wt = MemoryArchitecture("wt", [wt], dram_b, {}, "cache")
        result_wb = simulate(trace, arch_wb)
        result_wt = simulate(trace, arch_wt)
        back_wb = result_wb.channels["cache->dram"].bytes_moved
        back_wt = result_wt.channels["cache->dram"].bytes_moved
        assert back_wt > back_wb


class TestDmaIntegration:
    def make_chase_trace(self):
        builder = TraceBuilder("chase")
        node = 0
        for i in range(400):
            builder.read(0x10000 + node * 16, 8, "list")
            builder.compute(3)
            node = (node * 7 + 3) % 128
        return builder.build()

    def test_dma_beats_uncached(self, mem_library, conn_library):
        trace = self.make_chase_trace()
        dma = SelfIndirectDma("dma", entries=64, node_size=16, lookahead=4)
        dram_a = mem_library.get("dram").instantiate()
        dram_b = mem_library.get("dram").instantiate()
        arch_dma = MemoryArchitecture(
            "dma_arch", [dma], dram_a, {"list": "dma"}, "dram"
        )
        arch_plain = MemoryArchitecture("plain", [], dram_b, {}, "dram")
        with_dma = simulate(trace, arch_dma)
        without = simulate(trace, arch_plain)
        assert with_dma.avg_latency < without.avg_latency

    def test_dma_hint_follows_connectivity(self, mem_library, conn_library):
        trace = self.make_chase_trace()
        dma = SelfIndirectDma("dma", entries=64, node_size=16, lookahead=4)
        dram = mem_library.get("dram").instantiate()
        arch = MemoryArchitecture("a", [dma], dram, {"list": "dma"}, "dram")
        conn = simple_connectivity(arch, trace, conn_library)
        simulate(trace, arch, conn)
        off_chip = conn.component_for(
            [c for c in conn.channels() if c.source == "dma"][0]
        )
        expected = off_chip.timing(16).latency + dram.core_latency
        assert dma.backing_latency_hint == expected


class TestSamplingEdges:
    def test_period_longer_than_trace(self, tiny_trace, cache_architecture):
        # Whole trace fits in the first on-window.
        config = SamplingConfig(on_window=10_000, off_ratio=9, warmup=10)
        result = simulate(tiny_trace, cache_architecture, sampling=config)
        assert result.sampled_accesses == len(tiny_trace) - 10

    def test_all_on_sampling_equals_full(self, tiny_trace, cache_architecture):
        config = SamplingConfig(on_window=10_000, off_ratio=0, warmup=0)
        sampled = simulate(tiny_trace, cache_architecture, sampling=config)
        full = simulate(tiny_trace, cache_architecture)
        assert sampled.avg_latency == full.avg_latency
        assert sampled.avg_energy_nj == full.avg_energy_nj

    def test_warmup_consumes_whole_trace_raises(
        self, cache_architecture
    ):
        from repro.errors import SimulationError

        builder = TraceBuilder("t")
        for i in range(5):
            builder.read(0x1000 + 4 * i, 4, "s")
        trace = builder.build()
        config = SamplingConfig(on_window=100, off_ratio=0, warmup=50)
        with pytest.raises(SimulationError):
            simulate(trace, cache_architecture, sampling=config)


class TestDeterminismAcrossRuns:
    def test_full_pipeline_reproducible(self, mem_library, conn_library):
        from repro.apex.explorer import ApexConfig, explore_memory_architectures
        from repro.workloads import get_workload

        config = ApexConfig(
            cache_options=("cache_4k_16b_1w",),
            stream_buffer_options=(None,),
            dma_options=(None,),
            map_indexed_to_sram=(False,),
            select_count=1,
        )

        def run():
            workload = get_workload("vocoder", scale=0.25, seed=9)
            trace = workload.trace()
            apex = explore_memory_architectures(
                trace, mem_library, config, hints=workload.pattern_hints
            )
            return [
                (e.cost_gates, e.miss_ratio, e.avg_latency)
                for e in apex.evaluated
            ]

        assert run() == run()
