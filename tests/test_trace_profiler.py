"""Unit tests for bandwidth profiling."""

import pytest

from repro.trace.events import TraceBuilder
from repro.trace.profiler import profile_trace


def test_profile_totals(tiny_trace):
    profile = profile_trace(tiny_trace)
    assert profile.trace_name == "tiny"
    assert profile.total.accesses == len(tiny_trace)
    assert profile.total.bytes_moved == tiny_trace.total_bytes
    assert profile.duration == tiny_trace.duration


def test_per_struct_stats(tiny_trace):
    profile = profile_trace(tiny_trace)
    stream = profile.by_struct["stream"]
    table = profile.by_struct["table"]
    assert stream.accesses == 64
    assert stream.reads == 64 and stream.writes == 0
    assert table.writes == 64 and table.reads == 0
    assert table.write_fraction == 1.0
    assert stream.bytes_moved == 64 * 4
    assert table.bytes_moved == 64 * 8


def test_bandwidth_is_bytes_per_cycle(tiny_trace):
    profile = profile_trace(tiny_trace)
    expected = tiny_trace.total_bytes / tiny_trace.duration
    assert profile.total.bandwidth == pytest.approx(expected)
    assert profile.bandwidth_of("stream") == pytest.approx(
        64 * 4 / tiny_trace.duration
    )


def test_hottest(tiny_trace):
    assert profile_trace(tiny_trace).hottest().struct == "table"


def test_single_struct_trace():
    builder = TraceBuilder("one")
    builder.read(0, 4, "only")
    profile = profile_trace(builder.build())
    assert profile.total.accesses == 1
    assert profile.by_struct["only"].bandwidth == pytest.approx(4.0)


def test_compress_profile_shape(compress_trace):
    profile = profile_trace(compress_trace)
    # The hash table dominates compress traffic.
    assert profile.hottest().struct == "hash_table"
    assert set(profile.by_struct) == set(compress_trace.structs)
    total = sum(s.bytes_moved for s in profile.by_struct.values())
    assert total == profile.total.bytes_moved
