"""Fault tolerance: crash recovery, timeouts, and shm hygiene.

The regression surface of the fault-tolerant runtime: a worker
SIGKILLed mid-batch must not fail ``simulate_many`` (the batch
completes bit-identical to serial on a rebuilt pool), repeated crashes
must degrade to the serial path instead of erroring, a stuck worker
must be reaped by the job timeout, dispatch through a closed runtime
must fail eagerly, and no shared-memory blocks may outlive their owner
— neither on clean close nor after a crash (the startup sweep reclaims
those).

Worker faults are injected through the ``REPRO_FAULT_INJECT`` chaos
hook (see :mod:`repro.exec.runtime`): ``once:<path>`` SIGKILLs exactly
one worker, ``hang:<path>`` parks exactly one worker, ``always`` kills
every worker invocation.
"""

import os
import pathlib
import subprocess
import sys

import pytest

from repro.apex.architectures import MemoryArchitecture
from repro.errors import ExecutionError, ExplorationError
from repro.exec.cache import NullCache
from repro.exec.engine import SimulationJob, estimate_many, simulate_many
from repro.exec.runtime import (
    FAULT_INJECT_ENV,
    JOB_TIMEOUT_ENV,
    MAX_RETRIES_ENV,
    ExecutionRuntime,
    default_runtime,
    resolve_job_timeout,
    resolve_max_retries,
    set_default_runtime,
)
from repro.trace import shm
from repro.trace.events import Trace

_PRESETS = (
    "cache_4k_16b_1w",
    "cache_8k_32b_1w",
    "cache_8k_32b_2w",
    "cache_16k_32b_2w",
)


def _arch(mem_library, preset: str, name: str) -> MemoryArchitecture:
    cache = mem_library.get(preset).instantiate("cache")
    dram = mem_library.get("dram").instantiate()
    return MemoryArchitecture(name, [cache], dram, {}, "cache")


def _jobs(mem_library) -> list[SimulationJob]:
    return [
        SimulationJob(memory=_arch(mem_library, preset, f"m{i}"))
        for i, preset in enumerate(_PRESETS)
    ]


def _stale_shm_blocks() -> list[str]:
    """PID-tagged blocks of *this* process still present in /dev/shm."""
    dev_shm = pathlib.Path("/dev/shm")
    if not dev_shm.is_dir():  # pragma: no cover - non-POSIX hosts
        return []
    prefix = f"{shm.SHM_PREFIX}-{os.getpid()}-"
    return [p.name for p in dev_shm.iterdir() if p.name.startswith(prefix)]


class TestCrashRecovery:
    def test_sigkill_mid_batch_completes_bit_identical(
        self, tiny_trace, mem_library, monkeypatch, tmp_path
    ):
        """The headline acceptance criterion: one worker SIGKILL must
        not fail the batch, results must match serial exactly, and the
        pool must have been rebuilt."""
        jobs = _jobs(mem_library)
        serial = simulate_many(tiny_trace, jobs, workers=1, cache=NullCache())
        # Exports memoized by other suites' default runtime are
        # legitimately alive; only blocks *this* runtime creates must go.
        preexisting = set(_stale_shm_blocks())
        monkeypatch.setenv(
            FAULT_INJECT_ENV, f"once:{tmp_path / 'crash.marker'}"
        )
        with ExecutionRuntime(workers=2) as runtime:
            report = simulate_many(
                tiny_trace, jobs, cache=NullCache(), runtime=runtime
            )
            assert runtime.stats.pool_rebuilds >= 1
            assert runtime.stats.degraded_batches == 0
        assert (tmp_path / "crash.marker").exists(), "no fault was injected"
        assert report.results == serial.results
        assert report.pool_rebuilds >= 1
        assert report.retries >= 1
        assert not report.degraded
        assert set(_stale_shm_blocks()) <= preexisting

    def test_repeated_crashes_degrade_to_serial(
        self, tiny_trace, mem_library, monkeypatch
    ):
        """Killing every worker exhausts the rebuild budget; the batch
        must still complete — serially — rather than raise."""
        jobs = _jobs(mem_library)
        serial = simulate_many(tiny_trace, jobs, workers=1, cache=NullCache())
        monkeypatch.setenv(FAULT_INJECT_ENV, "always")
        with ExecutionRuntime(workers=2, max_retries=1) as runtime:
            report = simulate_many(
                tiny_trace, jobs, cache=NullCache(), runtime=runtime
            )
            assert runtime.last_dispatch is not None
            assert runtime.last_dispatch.degraded
        assert report.results == serial.results
        assert report.degraded
        assert report.pool_rebuilds == 2  # budget of 1 + the final straw

    def test_partial_progress_is_kept_across_rebuilds(
        self, tiny_trace, mem_library, monkeypatch, tmp_path
    ):
        """Chunk bookkeeping: jobs finished before the crash are not
        re-simulated (their chunks are collected, not re-dispatched)."""
        jobs = _jobs(mem_library) * 2  # 8 jobs -> several chunks
        serial = simulate_many(tiny_trace, jobs, workers=1, cache=NullCache())
        monkeypatch.setenv(FAULT_INJECT_ENV, f"once:{tmp_path / 'c.marker'}")
        with ExecutionRuntime(workers=2) as runtime:
            report = simulate_many(
                tiny_trace, jobs, cache=NullCache(), runtime=runtime
            )
            dispatch = runtime.last_dispatch
        assert report.results == serial.results
        assert dispatch.pool_rebuilds >= 1

    def test_estimates_recover_too(
        self, tiny_trace, mem_library, conn_library, monkeypatch, tmp_path
    ):
        from repro.conex.estimator import estimate_design
        from repro.exec.engine import EstimateJob

        from .conftest import simple_connectivity

        arch = _arch(mem_library, "cache_8k_32b_2w", "m")
        profile = simulate_many(
            tiny_trace, [SimulationJob(memory=arch)], cache=NullCache()
        ).results[0]
        connectivity = simple_connectivity(arch, tiny_trace, conn_library)
        jobs = [
            EstimateJob(memory=arch, connectivity=connectivity, profile=profile)
            for _ in range(6)
        ]
        expected = [
            estimate_design(j.memory, j.connectivity, j.profile) for j in jobs
        ]
        monkeypatch.setenv(FAULT_INJECT_ENV, f"once:{tmp_path / 'e.marker'}")
        with ExecutionRuntime(workers=2) as runtime:
            results = runtime.map_estimates(jobs)
            assert runtime.last_dispatch.pool_rebuilds >= 1
        assert results == expected


class TestJobTimeout:
    def test_stuck_worker_is_reaped_and_batch_completes(
        self, tiny_trace, mem_library, monkeypatch, tmp_path
    ):
        jobs = _jobs(mem_library)
        serial = simulate_many(tiny_trace, jobs, workers=1, cache=NullCache())
        monkeypatch.setenv(FAULT_INJECT_ENV, f"hang:{tmp_path / 'h.marker'}")
        with ExecutionRuntime(workers=2, job_timeout=1.0) as runtime:
            report = simulate_many(
                tiny_trace, jobs, cache=NullCache(), runtime=runtime
            )
            assert runtime.stats.timeouts >= 1
            assert runtime.stats.pool_rebuilds >= 1
        assert report.results == serial.results
        assert not report.degraded

    def test_timeout_env_parsing(self, monkeypatch):
        monkeypatch.setenv(JOB_TIMEOUT_ENV, "2.5")
        assert resolve_job_timeout() == 2.5
        monkeypatch.delenv(JOB_TIMEOUT_ENV)
        assert resolve_job_timeout() is None
        monkeypatch.setenv(JOB_TIMEOUT_ENV, "soon")
        with pytest.raises(ExecutionError):
            resolve_job_timeout()
        with pytest.raises(ExecutionError):
            resolve_job_timeout(-1.0)

    def test_max_retries_env_parsing(self, monkeypatch):
        monkeypatch.setenv(MAX_RETRIES_ENV, "5")
        assert resolve_max_retries() == 5
        monkeypatch.delenv(MAX_RETRIES_ENV)
        assert resolve_max_retries() == 2
        monkeypatch.setenv(MAX_RETRIES_ENV, "lots")
        with pytest.raises(ExecutionError):
            resolve_max_retries()
        with pytest.raises(ExecutionError):
            resolve_max_retries(-1)


class TestEagerClosedDispatch:
    def test_simulate_many_rejects_closed_runtime(
        self, tiny_trace, mem_library
    ):
        runtime = ExecutionRuntime(workers=2)
        runtime.close()
        with pytest.raises(ExplorationError):
            simulate_many(
                tiny_trace, _jobs(mem_library), cache=NullCache(),
                runtime=runtime,
            )

    def test_estimate_many_rejects_closed_runtime(self):
        runtime = ExecutionRuntime(workers=2)
        runtime.close()
        with pytest.raises(ExplorationError):
            estimate_many([], runtime=runtime)

    def test_execution_error_is_an_exploration_error(self):
        assert issubclass(ExecutionError, ExplorationError)


class TestDefaultRuntimeHealth:
    @pytest.fixture(autouse=True)
    def _isolate_default(self):
        previous = set_default_runtime(None)
        yield
        current = set_default_runtime(previous)
        if current is not None:
            current.close()

    def test_externally_broken_pool_is_replaced(self):
        """A worker dying while the pool is idle must not poison every
        later batch: default_runtime() hands out a fresh runtime."""
        from concurrent.futures.process import BrokenProcessPool

        runtime = default_runtime(2)
        pool = runtime._ensure_pool()
        pool.submit(abs, -1).result()  # spin the workers up
        for process in pool._processes.values():
            process.kill()
        with pytest.raises(BrokenProcessPool):
            pool.submit(abs, -1).result(timeout=30)
        assert not runtime.healthy
        replacement = default_runtime(2)
        assert replacement is not runtime
        assert replacement.healthy
        assert runtime.closed  # the dead one was shut down for us
        replacement.close()

    def test_healthy_runtime_is_reused(self):
        runtime = default_runtime(2)
        assert default_runtime(2) is runtime

    def test_runtime_self_heals_between_batches(self, tiny_trace, mem_library):
        """map_simulations on a runtime whose pool died while idle
        silently rebuilds instead of raising."""
        jobs = _jobs(mem_library)
        serial = simulate_many(tiny_trace, jobs, workers=1, cache=NullCache())
        with ExecutionRuntime(workers=2) as runtime:
            first = runtime.map_simulations(tiny_trace, jobs)
            for process in runtime._pool._processes.values():
                process.kill()
            second = runtime.map_simulations(tiny_trace, jobs)
        assert first == list(serial.results) == second


class TestShmHygiene:
    def test_export_uses_pid_tagged_names(self, tiny_trace):
        with tiny_trace.export_shared(transport="shm") as export:
            assert export.handle.block.startswith(
                f"{shm.SHM_PREFIX}-{os.getpid()}-"
            )

    def test_export_registers_and_close_unregisters(
        self, tiny_trace, monkeypatch, tmp_path
    ):
        monkeypatch.setenv(shm.MANIFEST_DIR_ENV, str(tmp_path))
        export = tiny_trace.export_shared(transport="shm")
        name = export.handle.block
        manifest = tmp_path / f"{os.getpid()}.manifest"
        assert manifest.exists()
        assert f"shm {name}" in manifest.read_text()
        export.close()
        assert ("shm", name) not in shm.registered_resources()
        if manifest.exists():
            assert f"shm {name}" not in manifest.read_text()

    def test_file_transport_is_registered_too(
        self, tiny_trace, monkeypatch, tmp_path
    ):
        monkeypatch.setenv(shm.MANIFEST_DIR_ENV, str(tmp_path))
        export = tiny_trace.export_shared(transport="file")
        path = export.handle.block
        manifest = tmp_path / f"{os.getpid()}.manifest"
        assert f"file {path}" in manifest.read_text()
        export.close()
        assert not os.path.exists(path)

    def test_runtime_close_leaves_no_blocks(self, tiny_trace, mem_library):
        preexisting = set(_stale_shm_blocks())
        with ExecutionRuntime(workers=2) as runtime:
            runtime.map_simulations(tiny_trace, _jobs(mem_library))
        assert set(_stale_shm_blocks()) <= preexisting

    def test_fork_child_cleanup_spares_parent_blocks(self, tiny_trace):
        """The owner-PID guard: a pool worker (fork child) running the
        cleanup path must not unlink blocks it merely inherited."""
        import multiprocessing

        with tiny_trace.export_shared(transport="shm") as export:
            context = multiprocessing.get_context("fork")
            child = context.Process(target=shm.cleanup_registered)
            child.start()
            child.join(timeout=30)
            assert child.exitcode == 0
            attached = Trace.attach_shared(export.handle)
            assert len(attached) == len(tiny_trace)

    def test_stale_sweep_reclaims_dead_process_blocks(
        self, monkeypatch, tmp_path
    ):
        """A process that dies without cleanup leaves a PID-tagged
        block and a manifest; the next runtime's startup sweep must
        unlink both."""
        pytest.importorskip("_posixshmem")
        monkeypatch.setenv(shm.MANIFEST_DIR_ENV, str(tmp_path))
        script = (
            "import _posixshmem, os, sys\n"
            "name = sys.argv[1]\n"
            "fd = _posixshmem.shm_open('/' + name, "
            "os.O_CREAT | os.O_EXCL | os.O_RDWR, mode=0o600)\n"
            "os.ftruncate(fd, 64)\n"
            "os.close(fd)\n"
            "print(os.getpid())\n"
        )
        probe = subprocess.run(
            [sys.executable, "-c", script, f"{shm.SHM_PREFIX}-0-deadproc"],
            capture_output=True,
            text=True,
            check=True,
        )
        dead_pid = int(probe.stdout.strip())
        assert not shm._pid_alive(dead_pid)
        block = f"{shm.SHM_PREFIX}-0-deadproc"
        (tmp_path / f"{dead_pid}.manifest").write_text(f"shm {block}\n")
        assert os.path.exists(f"/dev/shm/{block}")
        swept = shm.sweep_stale()
        assert block in swept
        assert not os.path.exists(f"/dev/shm/{block}")
        assert not (tmp_path / f"{dead_pid}.manifest").exists()

    def test_sweep_spares_live_processes(self, monkeypatch, tmp_path):
        pytest.importorskip("_posixshmem")
        monkeypatch.setenv(shm.MANIFEST_DIR_ENV, str(tmp_path))
        # Our own manifest (live PID) must never be swept.
        (tmp_path / f"{os.getpid()}.manifest").write_text("shm untouched\n")
        assert shm.sweep_stale() == []
        assert (tmp_path / f"{os.getpid()}.manifest").exists()
