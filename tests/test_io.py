"""Unit tests for trace persistence and design-point export."""

import csv
import json

import pytest

from repro.errors import TraceError
from repro.io import (
    export_design_points_csv,
    export_design_points_json,
    load_trace,
    save_trace,
    trace_fingerprint,
)


class TestTraceRoundTrip:
    def test_exact_round_trip(self, tiny_trace, tmp_path):
        path = tmp_path / "tiny.npz"
        save_trace(tiny_trace, path)
        loaded = load_trace(path)
        assert loaded.name == tiny_trace.name
        assert loaded.structs == tiny_trace.structs
        assert (loaded.addresses == tiny_trace.addresses).all()
        assert (loaded.sizes == tiny_trace.sizes).all()
        assert (loaded.kinds == tiny_trace.kinds).all()
        assert (loaded.struct_ids == tiny_trace.struct_ids).all()
        assert (loaded.ticks == tiny_trace.ticks).all()

    def test_round_trip_preserves_simulation(
        self, tiny_trace, tmp_path, cache_architecture
    ):
        from repro.sim import simulate

        path = tmp_path / "t.npz"
        save_trace(tiny_trace, path)
        loaded = load_trace(path)
        original = simulate(tiny_trace, cache_architecture)
        replayed = simulate(loaded, cache_architecture)
        assert original.avg_latency == replayed.avg_latency
        assert original.avg_energy_nj == replayed.avg_energy_nj

    def test_workload_trace_round_trip(self, compress_trace, tmp_path):
        path = tmp_path / "compress.npz"
        save_trace(compress_trace, path)
        loaded = load_trace(path)
        assert len(loaded) == len(compress_trace)
        assert loaded.counts_by_struct() == compress_trace.counts_by_struct()

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(TraceError):
            load_trace(tmp_path / "ghost.npz")

    def test_non_trace_npz_rejected(self, tmp_path):
        import numpy as np

        path = tmp_path / "other.npz"
        np.savez(path, something=np.arange(4))
        with pytest.raises(TraceError):
            load_trace(path)


class TestFingerprintPersistence:
    def test_round_trip_preserves_identity(self, tiny_trace, tmp_path):
        path = tmp_path / "t.npz"
        save_trace(tiny_trace, path)
        assert load_trace(path).fingerprint() == tiny_trace.fingerprint()

    def test_stored_fingerprint_readable_without_loading(
        self, tiny_trace, tmp_path
    ):
        path = tmp_path / "t.npz"
        save_trace(tiny_trace, path)
        assert trace_fingerprint(path) == tiny_trace.fingerprint()

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(TraceError):
            trace_fingerprint(tmp_path / "ghost.npz")

    def test_tampered_columns_detected(self, tiny_trace, tmp_path):
        import numpy as np

        path = tmp_path / "t.npz"
        save_trace(tiny_trace, path)
        with np.load(path, allow_pickle=False) as data:
            arrays = {key: data[key] for key in data.files}
        addresses = arrays["addresses"].copy()
        addresses[0] += 64
        arrays["addresses"] = addresses
        tampered = tmp_path / "tampered.npz"
        np.savez_compressed(tampered, **arrays)
        with pytest.raises(TraceError):
            load_trace(tampered)

    def test_version1_files_still_load(self, tiny_trace, tmp_path):
        import numpy as np

        path = tmp_path / "v1.npz"
        np.savez_compressed(
            path,
            version=np.int64(1),
            name=np.str_(tiny_trace.name),
            addresses=tiny_trace.addresses,
            sizes=tiny_trace.sizes,
            kinds=tiny_trace.kinds,
            struct_ids=tiny_trace.struct_ids,
            ticks=tiny_trace.ticks,
            structs=np.array(tiny_trace.structs, dtype=np.str_),
        )
        loaded = load_trace(path)
        assert loaded.fingerprint() == tiny_trace.fingerprint()
        with pytest.raises(TraceError):
            trace_fingerprint(path)


@pytest.fixture(scope="module")
def simulated_points():
    from repro.apex.explorer import ApexConfig, explore_memory_architectures
    from repro.conex.explorer import ConExConfig, explore_connectivity
    from repro.connectivity.library import default_connectivity_library
    from repro.memory.library import default_memory_library
    from repro.workloads import get_workload

    workload = get_workload("vocoder", scale=0.3, seed=1)
    trace = workload.trace()
    apex = explore_memory_architectures(
        trace,
        default_memory_library(),
        ApexConfig(
            cache_options=(None, "cache_4k_16b_1w"),
            stream_buffer_options=(None,),
            dma_options=(None,),
            map_indexed_to_sram=(False,),
            select_count=2,
        ),
        hints=workload.pattern_hints,
    )
    conex = explore_connectivity(
        trace,
        apex.selected,
        default_connectivity_library(),
        ConExConfig(max_logical_connections=3, max_assignments_per_level=8, phase1_keep=3),
    )
    return conex.simulated


class TestDesignPointExport:
    def test_json_export(self, simulated_points, tmp_path):
        path = tmp_path / "points.json"
        export_design_points_json(simulated_points, path)
        payload = json.loads(path.read_text())
        rows = payload["design_points"]
        assert len(rows) == len(simulated_points)
        assert all("cost_gates" in r and "label" in r for r in rows)
        assert all(isinstance(r["memory_modules"], list) for r in rows)

    def test_csv_export(self, simulated_points, tmp_path):
        path = tmp_path / "points.csv"
        export_design_points_csv(simulated_points, path)
        with open(path) as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == len(simulated_points)
        for row in rows:
            assert float(row["cost_gates"]) > 0
            assert float(row["avg_latency_cycles"]) >= 1.0

    def test_exports_agree(self, simulated_points, tmp_path):
        json_path = tmp_path / "p.json"
        csv_path = tmp_path / "p.csv"
        export_design_points_json(simulated_points, json_path)
        export_design_points_csv(simulated_points, csv_path)
        json_rows = json.loads(json_path.read_text())["design_points"]
        with open(csv_path) as handle:
            csv_rows = list(csv.DictReader(handle))
        for j, c in zip(json_rows, csv_rows):
            assert j["label"] == c["label"]
            assert abs(j["cost_gates"] - float(c["cost_gates"])) < 0.1
