"""Unit tests for access-pattern classification."""

import pytest

from repro.errors import TraceError
from repro.trace.events import TraceBuilder
from repro.trace.patterns import (
    AccessPattern,
    classify_structure,
    profile_patterns,
)


def build_trace(recorder):
    builder = TraceBuilder("t")
    recorder(builder)
    return builder.build()


class TestHeuristicClassification:
    def test_stream_detected(self):
        trace = build_trace(
            lambda b: [b.read(0x1000 + 4 * i, 4, "s") for i in range(200)]
        )
        profile = classify_structure(trace, "s")
        assert profile.pattern is AccessPattern.STREAM
        assert profile.dominant_stride == 4
        assert profile.stride_fraction == 1.0

    def test_scalar_detected_by_small_footprint(self):
        trace = build_trace(
            lambda b: [b.read(0x1000 + 8 * (i % 4), 8, "g") for i in range(50)]
        )
        assert classify_structure(trace, "g").pattern is AccessPattern.SCALAR

    def test_indexed_detected_by_revisits(self):
        def record(b):
            slots = [0, 7, 3, 7, 0, 11, 3, 7, 0, 11] * 20
            for s in slots:
                b.read(0x1000 + 64 * s, 8, "t")

        trace = build_trace(record)
        profile = classify_structure(trace, "t")
        assert profile.pattern is AccessPattern.INDEXED
        assert profile.revisit_fraction > 0.5

    def test_random_detected(self):
        def record(b):
            address = 0x1000
            for i in range(300):
                address = 0x1000 + (address * 1103515245 + 12345 + i) % 65536
                b.read(address, 8, "r")

        trace = build_trace(record)
        assert classify_structure(trace, "r").pattern is AccessPattern.RANDOM

    def test_single_access(self):
        trace = build_trace(lambda b: b.read(0x1000, 4, "one"))
        profile = classify_structure(trace, "one")
        assert profile.count == 1
        assert profile.pattern is AccessPattern.SCALAR


class TestHints:
    def test_hint_overrides_heuristic(self):
        trace = build_trace(
            lambda b: [b.read(0x1000 + 4 * i, 4, "s") for i in range(100)]
        )
        profile = classify_structure(
            trace, "s", hint=AccessPattern.SELF_INDIRECT
        )
        assert profile.pattern is AccessPattern.SELF_INDIRECT
        assert profile.dominant_stride == 4  # features still measured

    def test_unknown_hint_struct_raises(self):
        trace = build_trace(lambda b: b.read(0, 4, "a"))
        with pytest.raises(TraceError):
            profile_patterns(trace, {"ghost": AccessPattern.STREAM})


class TestProfilePatterns:
    def test_ordering_by_activity(self):
        def record(b):
            for i in range(10):
                b.read(0x9000 + 8 * i, 8, "cold")
            for i in range(100):
                b.read(0x1000 + 4 * i, 4, "hot")

        profiles = profile_patterns(build_trace(record))
        assert list(profiles) == ["hot", "cold"]

    def test_read_write_fractions(self):
        def record(b):
            for i in range(10):
                b.read(0x1000 + 512 * i, 4, "m")
            for i in range(30):
                b.write(0x1000 + 512 * (i % 10), 4, "m")

        profile = profile_patterns(build_trace(record))["m"]
        assert profile.read_fraction == pytest.approx(0.25)

    def test_workload_hints_accepted(self, compress_workload, compress_trace):
        profiles = profile_patterns(
            compress_trace, compress_workload.pattern_hints
        )
        assert profiles["hash_table"].pattern is AccessPattern.SELF_INDIRECT
        assert profiles["input_stream"].pattern is AccessPattern.STREAM
        assert profiles["misc"].pattern is AccessPattern.RANDOM

    def test_compress_heuristics_without_hints(self, compress_trace):
        profiles = profile_patterns(compress_trace)
        # The input stream is detectable without source knowledge.
        assert profiles["input_stream"].pattern is AccessPattern.STREAM
        assert profiles["globals"].pattern is AccessPattern.SCALAR
