"""Tests for the component registry and the redesigned library API.

PR 10 unifies component lookup: module families and connectivity
families register under stable string names, library *pairs* register
in :mod:`repro.registry`, and every entry point (``run_memorex``, the
service, the CLI, ``mixed_architecture``) resolves those names through
one path. Unknown names raise :class:`UnknownPresetError` — still a
``KeyError`` for old callers — and the legacy pass-the-object style
keeps working behind a :class:`DeprecationWarning`.
"""

from __future__ import annotations

import pytest

from repro import registry
from repro.connectivity.library import (
    component_families,
    component_family,
    default_connectivity_library,
    register_component_family,
)
from repro.connectivity.mesh import MeshConnection
from repro.core.memorex import run_memorex
from repro.errors import (
    ConfigurationError,
    LibraryError,
    ServiceError,
    UnknownPresetError,
)
from repro.memory.library import (
    default_memory_library,
    mixed_architecture,
    module_type,
    module_types,
    register_module_type,
)
from repro.memory.sram import Sram
from repro.service.schemas import parse_job_spec, spec_payload
from repro.workloads import get_workload


class TestUnknownPresetError:
    def test_is_keyerror_and_libraryerror(self):
        err = UnknownPresetError("no preset 'x'")
        assert isinstance(err, KeyError)
        assert isinstance(err, LibraryError)
        # KeyError.__str__ would repr the message; ours must not.
        assert str(err) == "no preset 'x'"

    def test_memory_library_get_names_unknown_and_known(self):
        library = default_memory_library()
        with pytest.raises(UnknownPresetError) as excinfo:
            library.get("cache_9000k")
        message = str(excinfo.value)
        assert "cache_9000k" in message
        assert "cache_8k_32b_2w" in message  # lists what *is* available

    def test_connectivity_library_get_names_unknown_and_known(self):
        library = default_connectivity_library()
        with pytest.raises(UnknownPresetError) as excinfo:
            library.get("hyperbus")
        message = str(excinfo.value)
        assert "hyperbus" in message
        assert "mesh_2x2" in message

    def test_old_style_keyerror_handlers_still_catch(self):
        library = default_memory_library()
        with pytest.raises(KeyError):
            library.get("nope")

    def test_family_lookups(self):
        with pytest.raises(UnknownPresetError):
            module_type("flux_capacitor")
        with pytest.raises(UnknownPresetError):
            component_family("wormhole")


class TestFamilyRegistries:
    def test_builtin_families_present(self):
        module_names = {entry.name for entry in module_types()}
        assert {
            "cache",
            "sram",
            "multiport_sram",
            "dram",
            "multichannel_dram",
        } <= module_names
        family_names = {entry.name for entry in component_families()}
        assert {"ahb", "mux", "dedicated", "mesh", "offchip"} <= family_names

    def test_registration_is_idempotent_but_conflicts_raise(self):
        entry = module_type("sram")
        again = register_module_type("sram", Sram, lambda: Sram("s", 1024))
        assert again is entry
        with pytest.raises(LibraryError):
            register_module_type("sram", MeshConnection, MeshConnection)
        family = component_family("mesh")
        assert (
            register_component_family(
                "mesh", MeshConnection, lambda: MeshConnection("m")
            )
            is family
        )
        with pytest.raises(LibraryError):
            register_component_family("mesh", Sram, lambda: Sram("s", 1024))

    def test_off_chip_capability_recorded(self):
        assert component_family("offchip").off_chip_capable
        assert not component_family("mesh").off_chip_capable


class TestRegistry:
    def test_default_pair_registered(self):
        assert "default" in registry.library_names()
        assert "default" in registry.memory_library_names()
        assert "default" in registry.connectivity_library_names()
        memory = registry.memory_library("default")
        assert "mcdram_2ch" in memory
        connectivity = registry.connectivity_library("default")
        assert "mesh_2x2" in connectivity

    def test_none_means_default(self):
        assert registry.memory_library(None).names() == (
            registry.memory_library("default").names()
        )

    def test_unknown_name_raises_with_known_names(self):
        with pytest.raises(UnknownPresetError) as excinfo:
            registry.memory_library("sparta")
        assert "sparta" in str(excinfo.value)
        assert "default" in str(excinfo.value)
        with pytest.raises(UnknownPresetError):
            registry.connectivity_library("sparta")

    def test_custom_pair_registration(self):
        name = "tiny-test-pair"

        def memory_builder():
            library = default_memory_library()
            return library

        registry.register_memory_library(name, memory_builder)
        # Only one side registered: not a usable pair yet.
        assert name not in registry.library_names()
        assert name in registry.memory_library_names()
        registry.register_connectivity_library(
            name, default_connectivity_library
        )
        assert name in registry.library_names()
        assert "mcdram_4ch" in registry.memory_library(name)
        # Idempotent for the same builder, conflict for a different one.
        registry.register_memory_library(name, memory_builder)
        with pytest.raises(LibraryError):
            registry.register_memory_library(name, default_memory_library)


class TestEntryPoints:
    def test_mixed_architecture_accepts_registry_name(self):
        trace = get_workload("synthetic", scale=0.05).trace()
        by_name = mixed_architecture(trace, "default")
        by_object = mixed_architecture(trace, default_memory_library())
        assert by_name.signature() == by_object.signature()

    def test_run_memorex_rejects_pair_plus_per_side(self):
        workload = get_workload("synthetic", scale=0.05)
        with pytest.raises(ConfigurationError):
            run_memorex(
                workload, library="default", memory_library="default"
            )

    def test_run_memorex_string_libraries_no_warning(self, recwarn):
        workload = get_workload("synthetic", scale=0.05)
        result = run_memorex(
            workload,
            memory_library="default",
            connectivity_library="default",
        )
        assert result.selected_points
        assert not [
            w for w in recwarn if w.category is DeprecationWarning
        ]

    def test_run_memorex_objects_deprecated_but_working(self):
        workload = get_workload("synthetic", scale=0.05)
        with pytest.warns(DeprecationWarning, match="register_memory_library"):
            legacy = run_memorex(
                workload,
                memory_library=default_memory_library(),
                connectivity_library=default_connectivity_library(),
            )
        modern = run_memorex(workload, library="default")
        assert [p.simulation for p in legacy.selected_points] == [
            p.simulation for p in modern.selected_points
        ]

    def test_job_spec_library_field(self):
        spec = parse_job_spec(
            {"kind": "apex", "workload": "spmv", "library": "default"}
        )
        assert spec.library == "default"
        assert spec_payload(spec)["library"] == "default"
        roundtrip = parse_job_spec(spec_payload(spec))
        assert roundtrip == spec

    def test_job_spec_rejects_unknown_library(self):
        with pytest.raises(ServiceError, match="atlantis"):
            parse_job_spec(
                {"workload": "synthetic", "library": "atlantis"}
            )
