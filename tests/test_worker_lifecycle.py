"""Worker lifecycle: leak bounds, graceful drain, and frame limits.

These pin the long-lived-worker fixes: connection threads are reaped
(not accumulated forever), the in-memory trace/blob stores are
byte-capped LRUs, ``stop(drain_timeout=...)`` joins connection
threads, an oversized length header is rejected before allocation,
and bracketed IPv6 addresses parse. The soak test drives hundreds of
sequential connections and asserts every bound holds.
"""

from __future__ import annotations

import socket
import struct
import threading
import time

import pytest

from repro import obs
from repro.errors import ExecutionError
from repro.exec import RemoteBackend, SimulationJob
from repro.exec import net
from repro.exec.cache import CacheClient
from repro.exec.worker import ByteLRU, WorkerServer


class TestByteLRU:
    def test_put_get_roundtrip(self):
        lru = ByteLRU(100)
        lru.put("a", "alpha", 10)
        assert lru.get("a") == "alpha"
        assert lru.get("missing") is None
        assert lru.total_bytes == 10
        assert len(lru) == 1

    def test_evicts_least_recently_used_first(self):
        lru = ByteLRU(30)
        lru.put("a", "A", 10)
        lru.put("b", "B", 10)
        lru.put("c", "C", 10)
        lru.get("a")  # refresh: "b" is now the LRU entry
        lru.put("d", "D", 10)
        assert "b" not in lru
        assert all(key in lru for key in ("a", "c", "d"))
        assert lru.evictions == 1
        assert lru.total_bytes == 30

    def test_replacing_a_key_adjusts_accounting(self):
        lru = ByteLRU(100)
        lru.put("a", "v1", 40)
        lru.put("a", "v2", 10)
        assert lru.total_bytes == 10
        assert lru.get("a") == "v2"

    def test_oversized_entry_survives_its_own_put(self):
        lru = ByteLRU(10)
        lru.put("big", "payload", 50)
        assert lru.get("big") == "payload"  # served at least once
        lru.put("next", "x", 5)
        assert "big" not in lru  # displaced by the next insert
        assert lru.total_bytes == 5

    def test_cap_holds_under_churn(self):
        lru = ByteLRU(1000)
        for i in range(500):
            lru.put(i, i, 100)
            assert lru.total_bytes <= 1000
        assert len(lru) == 10
        assert lru.evictions == 490

    def test_rejects_nonpositive_cap(self):
        with pytest.raises(ValueError):
            ByteLRU(0)


class TestParseAddress:
    def test_bracketed_ipv6(self):
        assert net.parse_address("[::1]:9000") == ("::1", 9000)
        assert net.parse_address("[fe80::2%eth0]:80") == ("fe80::2%eth0", 80)

    def test_plain_ipv4_still_works(self):
        assert net.parse_address("10.0.0.1:7000") == ("10.0.0.1", 7000)
        assert net.parse_address("worker-3.local:9000") == (
            "worker-3.local",
            9000,
        )

    def test_unbracketed_ipv6_is_rejected(self):
        with pytest.raises(ExecutionError, match="brackets"):
            net.parse_address("::1:9000")

    def test_empty_bracket_host_is_rejected(self):
        with pytest.raises(ExecutionError, match="empty IPv6 host"):
            net.parse_address("[]:9000")

    def test_missing_port_is_rejected(self):
        with pytest.raises(ExecutionError):
            net.parse_address("[::1]")


class TestFrameLimit:
    def test_oversized_header_is_rejected_before_allocation(self):
        ours, theirs = socket.socketpair()
        try:
            connection = net.Connection(ours, max_frame=1024)
            # A hostile/garbage header declaring a ~3 GiB frame. recv()
            # must fail on the header alone — the payload is never sent.
            theirs.sendall(struct.pack("!BI", net.MSG_PING, 3 << 30))
            with pytest.raises(net.BackendUnavailable, match="max 1024"):
                connection.recv()
        finally:
            ours.close()
            theirs.close()

    def test_frames_within_the_cap_pass(self):
        ours, theirs = socket.socketpair()
        try:
            connection = net.Connection(ours, max_frame=1024)
            theirs.sendall(struct.pack("!BI", net.MSG_PING, 3) + b"abc")
            frame = connection.recv()
            assert frame.kind == net.MSG_PING
            assert frame.payload == b"abc"
        finally:
            ours.close()
            theirs.close()

    def test_default_cap_comes_from_settings(self):
        ours, theirs = socket.socketpair()
        try:
            assert net.Connection(ours).max_frame == net.max_frame_bytes()
        finally:
            ours.close()
            theirs.close()


class TestWorkerDrain:
    def test_stop_without_drain_keeps_legacy_behaviour(self):
        server = WorkerServer()
        server.start()
        assert server.stop() in (True, False)  # non-blocking, no join

    def test_drain_joins_idle_connections(self):
        server = WorkerServer()
        server.start()
        client = CacheClient(server.address)
        client.put("digest", b"blob")  # open a live, then-idle connection
        assert server.live_threads >= 1
        # The connection stays parked in recv(); drain must close it
        # out from under the thread and come back clean.
        assert server.stop(drain_timeout=5.0)
        assert server.live_threads == 0
        client.close()

    def test_drain_lets_inflight_request_finish(self, tiny_trace, mem_library):
        server = WorkerServer()
        server.start()
        cache = mem_library.get("cache_8k_32b_2w").instantiate("cache")
        dram = mem_library.get("dram").instantiate()
        from repro.apex.architectures import MemoryArchitecture

        arch = MemoryArchitecture("m", [cache], dram, {}, "cache")
        jobs = [SimulationJob(memory=arch)] * 4
        backend = RemoteBackend(server.address)
        results: list = []

        def run() -> None:
            results.append(backend.run_simulations(tiny_trace, jobs))

        thread = threading.Thread(target=run)
        thread.start()
        time.sleep(0.05)  # let the batch reach the worker
        assert server.stop(drain_timeout=10.0)
        thread.join(timeout=10.0)
        backend.close()
        # The in-flight batch completed its reply during the drain.
        assert len(results) == 1 and len(results[0]) == 4

    def test_threads_are_reaped_not_accumulated(self):
        server = WorkerServer()
        server.start()
        try:
            for _ in range(80):
                client = CacheClient(server.address)
                client.get("digest")
                client.close()
            deadline = time.monotonic() + 5.0
            while server.live_threads > 2 and time.monotonic() < deadline:
                time.sleep(0.02)
            # Dead Thread objects must not pile up connection after
            # connection (the pre-fix behaviour kept all 80 forever).
            assert server.live_threads <= 2
            assert server.connections_served == 80
        finally:
            server.stop(drain_timeout=2.0)

    def test_blob_store_honours_byte_cap(self):
        server = WorkerServer()
        server._blobs = ByteLRU(64 * 1024)  # 64 KiB cap for the test
        server.start()
        try:
            client = CacheClient(server.address)
            blob = b"x" * 8192
            for i in range(64):  # 512 KiB pushed through a 64 KiB cap
                client.put(f"digest{i}", blob)
            client.close()
            assert server._blobs.total_bytes <= 64 * 1024
            assert server._blobs.evictions > 0
            assert len(server._blobs) <= 8
        finally:
            server.stop(drain_timeout=2.0)

    def test_evicted_trace_is_repushed_transparently(
        self, tiny_trace, mem_library
    ):
        server = WorkerServer()
        server.start()
        from repro.apex.architectures import MemoryArchitecture

        cache = mem_library.get("cache_4k_16b_1w").instantiate("cache")
        dram = mem_library.get("dram").instantiate()
        jobs = [
            SimulationJob(
                memory=MemoryArchitecture("m", [cache], dram, {}, "cache")
            )
        ]
        try:
            with RemoteBackend(server.address) as backend:
                first = backend.run_simulations(tiny_trace, jobs)
                # Simulate store pressure: the worker forgets the trace.
                server._traces = ByteLRU(server._traces.max_bytes)
                counters = obs.snapshot().counters
                before = counters.get("backend.trace_repushes", 0)
                second = backend.run_simulations(tiny_trace, jobs)
                assert second == first
                if obs.enabled():
                    after = obs.snapshot().counters["backend.trace_repushes"]
                    assert after == before + 1
        finally:
            server.stop(drain_timeout=2.0)


class TestSoak:
    def test_hundreds_of_connections_stay_bounded(self):
        """The leak reproducer: sequential clients against one worker.

        Before the fixes, every connection left a Thread object in
        ``_threads`` and every blob grew ``_blobs`` without bound.
        """
        server = WorkerServer()
        server._blobs = ByteLRU(256 * 1024)
        server.start()
        try:
            blob = b"y" * 4096
            for i in range(300):
                client = CacheClient(server.address)
                client.put(f"soak{i}", blob)
                assert client.get(f"soak{i}") == blob
                client.close()
            assert server.connections_served == 300
            assert server.requests_served >= 600
            deadline = time.monotonic() + 5.0
            while server.live_threads > 4 and time.monotonic() < deadline:
                time.sleep(0.02)
            assert server.live_threads <= 4
            assert len(server._threads) <= 64  # reap threshold + slack
            assert server._blobs.total_bytes <= 256 * 1024
        finally:
            assert server.stop(drain_timeout=5.0)
