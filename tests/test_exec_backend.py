"""Unit tests for the pluggable execution-backend layer.

Covers the :class:`~repro.exec.backend.ExecutionBackend` contract
(ordered results, bit-identity across implementations), the sharded
fault-tolerant dispatch, backend resolution from arguments and
``REPRO_BACKEND``, and the CPU-count pool cap.
"""

import os

import pytest

from repro.apex.architectures import MemoryArchitecture
from repro.config import BACKEND_ENV, WORKER_ADDRS_ENV, WORKERS_CAP_ENV
from repro.errors import ExecutionError
from repro.exec import (
    EstimateJob,
    ExecutionRuntime,
    NullCache,
    PoolBackend,
    SerialBackend,
    ShardedBackend,
    SimulationJob,
    resolve_backend,
    simulate_batch,
    simulate_many,
)
from repro.exec.net import BackendUnavailable
from repro.exec.runtime import _CAP_WARNED, effective_pool_workers

from .conftest import simple_connectivity

_PRESETS = (
    "cache_4k_16b_1w",
    "cache_8k_32b_1w",
    "cache_8k_32b_2w",
    "cache_16k_32b_2w",
)


def _arch(mem_library, preset: str, name: str) -> MemoryArchitecture:
    cache = mem_library.get(preset).instantiate("cache")
    dram = mem_library.get("dram").instantiate()
    return MemoryArchitecture(name, [cache], dram, {}, "cache")


def _jobs(mem_library) -> list[SimulationJob]:
    return [
        SimulationJob(memory=_arch(mem_library, preset, f"m{i}"))
        for i, preset in enumerate(_PRESETS)
    ]


def _estimate_jobs(tiny_trace, mem_library, conn_library) -> list[EstimateJob]:
    jobs = []
    for i, preset in enumerate(_PRESETS):
        memory = _arch(mem_library, preset, f"e{i}")
        connectivity = simple_connectivity(memory, tiny_trace, conn_library)
        profile = simulate_many(
            tiny_trace, [SimulationJob(memory=memory)], cache=NullCache()
        ).results[0]
        jobs.append(
            EstimateJob(
                memory=memory, connectivity=connectivity, profile=profile
            )
        )
    return jobs


class FlakyBackend(SerialBackend):
    """Dies with BackendUnavailable on its first N dispatches."""

    name = "flaky"

    def __init__(self, failures: int = 1) -> None:
        self.failures = failures
        self.calls = 0

    def _maybe_fail(self) -> None:
        self.calls += 1
        if self.calls <= self.failures:
            raise BackendUnavailable("injected shard death")

    def run_simulations(self, trace, jobs):
        self._maybe_fail()
        return super().run_simulations(trace, jobs)

    def run_groups(self, trace, groups):
        self._maybe_fail()
        return super().run_groups(trace, groups)

    def run_estimates(self, jobs):
        self._maybe_fail()
        return super().run_estimates(jobs)


class TestBackendEquivalence:
    def test_serial_backend_matches_engine(self, tiny_trace, mem_library):
        jobs = _jobs(mem_library)
        reference = simulate_many(
            tiny_trace, jobs, workers=1, cache=NullCache()
        )
        report = simulate_many(
            tiny_trace, jobs, cache=NullCache(), backend=SerialBackend()
        )
        assert report.results == reference.results
        assert report.backend == "serial"
        assert report.bytes_sent == 0 and report.bytes_received == 0

    def test_serial_backend_groups_match(self, tiny_trace, mem_library):
        jobs = _jobs(mem_library)
        reference = simulate_batch(
            tiny_trace, jobs, workers=1, cache=NullCache()
        )
        report = simulate_batch(
            tiny_trace, jobs, cache=NullCache(), backend=SerialBackend()
        )
        assert report.results == reference.results
        assert report.batch_groups == reference.batch_groups

    def test_pool_backend_matches_serial(self, tiny_trace, mem_library):
        jobs = _jobs(mem_library)
        reference = simulate_batch(
            tiny_trace, jobs, workers=1, cache=NullCache()
        )
        with ExecutionRuntime(workers=2) as runtime:
            report = simulate_batch(
                tiny_trace,
                jobs,
                cache=NullCache(),
                backend=PoolBackend(runtime=runtime),
            )
        assert report.results == reference.results
        assert report.backend == "pool"

    def test_sharded_merge_is_bit_identical(self, tiny_trace, mem_library):
        jobs = _jobs(mem_library)
        reference = simulate_batch(
            tiny_trace, jobs, workers=1, cache=NullCache()
        )
        sharded = ShardedBackend([SerialBackend(), SerialBackend()])
        report = simulate_batch(
            tiny_trace, jobs, cache=NullCache(), backend=sharded
        )
        assert report.results == reference.results
        assert report.backend == "sharded"
        assert report.retries == 0 and not report.degraded

    def test_sharded_estimates(
        self, tiny_trace, mem_library, conn_library
    ):
        jobs = _estimate_jobs(tiny_trace, mem_library, conn_library)
        serial = SerialBackend().run_estimates(jobs)
        sharded = ShardedBackend([SerialBackend(), SerialBackend()])
        assert sharded.run_estimates(jobs) == serial


class TestShardedFaults:
    def test_dead_shard_redispatches_to_survivor(
        self, tiny_trace, mem_library
    ):
        jobs = _jobs(mem_library)
        reference = simulate_batch(
            tiny_trace, jobs, workers=1, cache=NullCache()
        )
        sharded = ShardedBackend([SerialBackend(), FlakyBackend(failures=9)])
        report = simulate_batch(
            tiny_trace, jobs, cache=NullCache(), backend=sharded
        )
        assert report.results == reference.results
        assert report.retries == 1
        assert not report.degraded
        assert sharded._alive == [True, False]

    def test_all_shards_dead_degrades_to_fallback(
        self, tiny_trace, mem_library
    ):
        jobs = _jobs(mem_library)
        reference = simulate_batch(
            tiny_trace, jobs, workers=1, cache=NullCache()
        )
        sharded = ShardedBackend(
            [FlakyBackend(failures=9), FlakyBackend(failures=9)]
        )
        report = simulate_batch(
            tiny_trace, jobs, cache=NullCache(), backend=sharded
        )
        assert report.results == reference.results
        assert report.degraded

    def test_retry_budget_degrades(self, tiny_trace, mem_library):
        jobs = _jobs(mem_library)
        flaky = FlakyBackend(failures=9)
        sharded = ShardedBackend([flaky], max_retries=0)
        report = simulate_batch(
            tiny_trace, jobs, cache=NullCache(), backend=sharded
        )
        reference = simulate_batch(
            tiny_trace, jobs, workers=1, cache=NullCache()
        )
        assert report.results == reference.results
        assert report.degraded

    def test_job_errors_are_not_faults(self, tiny_trace, mem_library):
        class BrokenJobBackend(SerialBackend):
            def run_groups(self, trace, groups):
                raise ValueError("job blew up")

        sharded = ShardedBackend([BrokenJobBackend(), SerialBackend()])
        with pytest.raises(ValueError, match="job blew up"):
            sharded.run_groups(tiny_trace, [_jobs(mem_library)])

    def test_needs_at_least_one_backend(self):
        with pytest.raises(ExecutionError):
            ShardedBackend([])


class TestResolveBackend:
    def test_unset_returns_none(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV, raising=False)
        assert resolve_backend(None) is None

    def test_names_resolve(self):
        assert isinstance(resolve_backend("serial"), SerialBackend)
        assert isinstance(resolve_backend("pool", workers=1), PoolBackend)

    def test_instance_passes_through(self):
        backend = SerialBackend()
        assert resolve_backend(backend) is backend

    def test_unknown_name_rejected(self):
        with pytest.raises(ExecutionError, match="unknown backend"):
            resolve_backend("quantum")

    def test_env_selects_backend(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "serial")
        assert isinstance(resolve_backend(None), SerialBackend)

    def test_remote_requires_addresses(self, monkeypatch):
        monkeypatch.delenv(WORKER_ADDRS_ENV, raising=False)
        with pytest.raises(ExecutionError, match=WORKER_ADDRS_ENV):
            resolve_backend("remote")

    def test_remote_builds_sharded(self, monkeypatch):
        monkeypatch.setenv(
            WORKER_ADDRS_ENV, "127.0.0.1:1, 127.0.0.1:2"
        )
        backend = resolve_backend("remote")
        assert isinstance(backend, ShardedBackend)
        assert [b.address for b in backend.backends] == [
            "127.0.0.1:1",
            "127.0.0.1:2",
        ]

    def test_bad_env_name_rejected(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "bogus")
        with pytest.raises(ExecutionError):
            resolve_backend(None)


class TestWorkerCap:
    def test_cap_applies_above_cpu_count(self, monkeypatch):
        monkeypatch.delenv(WORKERS_CAP_ENV, raising=False)
        cap = os.cpu_count() or 1
        _CAP_WARNED.discard(os.getpid())
        with pytest.warns(RuntimeWarning, match="capping the pool"):
            assert effective_pool_workers(cap + 3) == cap

    def test_warning_fires_once_per_process(self, monkeypatch):
        monkeypatch.delenv(WORKERS_CAP_ENV, raising=False)
        cap = os.cpu_count() or 1
        _CAP_WARNED.discard(os.getpid())
        with pytest.warns(RuntimeWarning):
            effective_pool_workers(cap + 3)
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert effective_pool_workers(cap + 3) == cap  # silent now

    def test_within_cap_untouched(self, monkeypatch):
        monkeypatch.delenv(WORKERS_CAP_ENV, raising=False)
        assert effective_pool_workers(1) == 1

    def test_opt_out(self, monkeypatch):
        monkeypatch.setenv(WORKERS_CAP_ENV, "0")
        cap = os.cpu_count() or 1
        assert effective_pool_workers(cap + 3) == cap + 3

    def test_dispatch_semantics_keep_requested_workers(
        self, monkeypatch, tiny_trace, mem_library
    ):
        """The cap sizes the pool, not the report's worker accounting."""
        monkeypatch.delenv(WORKERS_CAP_ENV, raising=False)
        report = simulate_many(
            tiny_trace, _jobs(mem_library), workers=4, cache=NullCache()
        )
        assert report.workers == 4
