"""Unit tests for knee-point and weighted selection helpers."""

import pytest

from repro.errors import ExplorationError
from repro.util.selection import knee_point, weighted_best


class TestKneePoint:
    def test_obvious_knee(self):
        # Steep drop then flat tail: the corner is the knee.
        curve = [(0.0, 10.0), (1.0, 2.0), (5.0, 1.8), (10.0, 1.7)]
        assert knee_point(curve, key=lambda p: p) == (1.0, 2.0)

    def test_straight_line_returns_an_endpoint_or_middle(self):
        line = [(0.0, 10.0), (5.0, 5.0), (10.0, 0.0)]
        assert knee_point(line, key=lambda p: p) in line

    def test_two_points(self):
        pair = [(3.0, 1.0), (1.0, 3.0)]
        assert knee_point(pair, key=lambda p: p) == (1.0, 3.0)

    def test_single_point(self):
        assert knee_point([(1.0, 1.0)], key=lambda p: p) == (1.0, 1.0)

    def test_key_extraction(self):
        items = [
            {"cost": 0.0, "lat": 10.0},
            {"cost": 1.0, "lat": 2.0},
            {"cost": 10.0, "lat": 1.9},
        ]
        knee = knee_point(items, key=lambda d: (d["cost"], d["lat"]))
        assert knee["cost"] == 1.0

    def test_unsorted_input(self):
        curve = [(10.0, 1.7), (0.0, 10.0), (5.0, 1.8), (1.0, 2.0)]
        assert knee_point(curve, key=lambda p: p) == (1.0, 2.0)

    def test_empty_rejected(self):
        with pytest.raises(ExplorationError):
            knee_point([], key=lambda p: p)

    def test_degenerate_axis(self):
        flat = [(0.0, 5.0), (1.0, 5.0), (2.0, 5.0)]
        assert knee_point(flat, key=lambda p: p) in flat


class TestWeightedBest:
    POINTS = [(100.0, 10.0, 5.0), (200.0, 5.0, 5.0), (150.0, 7.0, 2.0)]

    def test_cost_priority(self):
        best = weighted_best(self.POINTS, key=lambda p: p, weights=(1, 0, 0))
        assert best == (100.0, 10.0, 5.0)

    def test_latency_priority(self):
        best = weighted_best(self.POINTS, key=lambda p: p, weights=(0, 1, 0))
        assert best == (200.0, 5.0, 5.0)

    def test_energy_priority(self):
        best = weighted_best(self.POINTS, key=lambda p: p, weights=(0, 0, 1))
        assert best == (150.0, 7.0, 2.0)

    def test_balanced(self):
        best = weighted_best(self.POINTS, key=lambda p: p, weights=(1, 1, 1))
        assert best in self.POINTS

    def test_normalization_makes_weights_unitless(self):
        # Scaling one axis by 1000 must not change the outcome.
        scaled = [(p[0] * 1000, p[1], p[2]) for p in self.POINTS]
        best_original = weighted_best(
            self.POINTS, key=lambda p: p, weights=(1, 1, 1)
        )
        best_scaled = weighted_best(scaled, key=lambda p: p, weights=(1, 1, 1))
        assert best_scaled[1:] == best_original[1:]

    def test_empty_rejected(self):
        with pytest.raises(ExplorationError):
            weighted_best([], key=lambda p: p, weights=(1,))

    def test_bad_weights_rejected(self):
        with pytest.raises(ExplorationError):
            weighted_best(self.POINTS, key=lambda p: p, weights=(0, 0, 0))
        with pytest.raises(ExplorationError):
            weighted_best(self.POINTS, key=lambda p: p, weights=(-1, 1, 1))

    def test_dimension_mismatch_rejected(self):
        with pytest.raises(ExplorationError):
            weighted_best(self.POINTS, key=lambda p: p, weights=(1, 1))
