"""Unit tests for the parametric synthetic workload."""

import pytest

from repro.errors import ConfigurationError
from repro.trace.patterns import AccessPattern, profile_patterns
from repro.workloads import SyntheticWorkload


def test_default_mix_has_four_structures():
    trace = SyntheticWorkload(scale=0.2, seed=1).trace()
    assert set(trace.structs) == {
        "stream_data",
        "node_pool",
        "lookup_table",
        "scatter_data",
    }


def test_mix_proportions_respected():
    mix = {AccessPattern.STREAM: 3.0, AccessPattern.RANDOM: 1.0}
    trace = SyntheticWorkload(scale=0.5, seed=1, mix=mix).trace()
    counts = trace.counts_by_struct()
    ratio = counts["stream_data"] / counts["scatter_data"]
    assert 2.2 < ratio < 3.8


def test_single_pattern_mix():
    mix = {AccessPattern.STREAM: 1.0}
    trace = SyntheticWorkload(scale=0.2, seed=1, mix=mix).trace()
    assert set(trace.structs) == {"stream_data"}


def test_heuristics_recover_patterns():
    trace = SyntheticWorkload(scale=0.5, seed=3).trace()
    profiles = profile_patterns(trace)
    assert profiles["stream_data"].pattern is AccessPattern.STREAM
    assert profiles["lookup_table"].pattern is AccessPattern.INDEXED
    # Pointer chasing needs the hint; heuristically it looks irregular.
    assert profiles["node_pool"].pattern in (
        AccessPattern.RANDOM,
        AccessPattern.INDEXED,
    )


def test_hints_match_mix():
    workload = SyntheticWorkload(mix={AccessPattern.SELF_INDIRECT: 1.0})
    assert workload.pattern_hints == {
        "node_pool": AccessPattern.SELF_INDIRECT
    }


def test_empty_mix_rejected():
    with pytest.raises(ConfigurationError):
        SyntheticWorkload(mix={})


def test_negative_weight_rejected():
    with pytest.raises(ConfigurationError):
        SyntheticWorkload(mix={AccessPattern.STREAM: -1.0})


def test_determinism():
    a = SyntheticWorkload(scale=0.2, seed=11).trace()
    b = SyntheticWorkload(scale=0.2, seed=11).trace()
    assert (a.addresses == b.addresses).all()


def test_node_pool_is_permutation_chase():
    mix = {AccessPattern.SELF_INDIRECT: 1.0}
    trace = SyntheticWorkload(scale=0.3, seed=1, mix=mix).trace()
    # Following a fixed permutation: consecutive accesses never repeat
    # the same node.
    import numpy as np

    assert (np.diff(trace.addresses) != 0).all()
