"""Parametrized sanity matrix over every library preset.

A safety net for library growth: every memory preset must instantiate,
serve accesses, reset cleanly, and report sane models; every
connectivity preset must produce coherent timing, reservation tables,
and cost/energy figures. New presets are covered automatically.
"""

import pytest

from repro.connectivity.library import default_connectivity_library
from repro.memory.dram import Dram
from repro.memory.library import default_memory_library
from repro.trace.events import AccessKind

MEMORY_LIBRARY = default_memory_library()
CONNECTIVITY_LIBRARY = default_connectivity_library()

MEMORY_PRESETS = list(MEMORY_LIBRARY.names())
CONNECTIVITY_PRESETS = list(CONNECTIVITY_LIBRARY.names())


@pytest.mark.parametrize("preset_name", MEMORY_PRESETS)
class TestEveryMemoryPreset:
    def test_instantiates_fresh(self, preset_name):
        a = MEMORY_LIBRARY.get(preset_name).instantiate()
        b = MEMORY_LIBRARY.get(preset_name).instantiate()
        assert a is not b
        assert a.name

    def test_models_sane(self, preset_name):
        module = MEMORY_LIBRARY.get(preset_name).instantiate()
        assert module.area_gates >= 0.0
        if not isinstance(module, Dram):
            assert module.area_gates > 0.0
        assert module.access_energy_nj > 0.0

    def test_serves_accesses_and_resets(self, preset_name):
        module = MEMORY_LIBRARY.get(preset_name).instantiate()
        for tick, address in enumerate([0x100, 0x140, 0x100, 0x9000]):
            response = module.access(address, 4, AccessKind.READ, tick * 10)
            assert response.latency >= 1
            assert response.refill_bytes >= 0
            assert response.writeback_bytes >= 0
            assert response.prefetch_bytes >= 0
        module.reset()
        # After reset the module serves again from power-on state.
        response = module.access(0x100, 4, AccessKind.READ, 0)
        assert response.latency >= 1

    def test_write_access(self, preset_name):
        module = MEMORY_LIBRARY.get(preset_name).instantiate()
        response = module.access(0x200, 8, AccessKind.WRITE, 0)
        assert response.latency >= 1

    def test_kind_tag(self, preset_name):
        module = MEMORY_LIBRARY.get(preset_name).instantiate()
        preset = MEMORY_LIBRARY.get(preset_name)
        assert module.kind == preset.kind


@pytest.mark.parametrize("preset_name", CONNECTIVITY_PRESETS)
class TestEveryConnectivityPreset:
    def test_timing_monotone_in_size(self, preset_name):
        component = CONNECTIVITY_LIBRARY.get(preset_name).instantiate()
        latencies = [component.timing(size).latency for size in (1, 4, 16, 64)]
        assert latencies == sorted(latencies)
        assert all(latency >= 1 for latency in latencies)

    def test_occupancy_never_exceeds_latency(self, preset_name):
        component = CONNECTIVITY_LIBRARY.get(preset_name).instantiate()
        for size in (1, 8, 32):
            timing = component.timing(size)
            assert 1 <= timing.occupancy <= timing.latency

    def test_reservation_table_consistent(self, preset_name):
        component = CONNECTIVITY_LIBRARY.get(preset_name).instantiate()
        table = component.reservation_table(16)
        assert table.length >= 1
        assert 1 <= table.min_initiation_interval() <= table.length
        if component.pipelined:
            assert table.min_initiation_interval() <= component.timing(16).latency

    def test_cost_and_energy_positive(self, preset_name):
        component = CONNECTIVITY_LIBRARY.get(preset_name).instantiate()
        ports = min(2, component.max_ports)
        assert component.cost_gates(ports, 1e5) > 0.0
        assert component.energy_nj_per_byte(ports, 1e5) > 0.0

    def test_off_chip_flag_matches_library(self, preset_name):
        preset = CONNECTIVITY_LIBRARY.get(preset_name)
        component = preset.instantiate()
        assert preset.off_chip_capable == (not component.on_chip)

    def test_describe_mentions_width(self, preset_name):
        component = CONNECTIVITY_LIBRARY.get(preset_name).instantiate()
        assert f"{component.width_bytes * 8}-bit" in component.describe()
