"""Documentation consistency: the docs reference what actually exists.

Guards against doc rot: the experiment index's benchmark files, the
README's example commands, and the packages named in the architecture
docs must all exist in the repository.
"""

import pathlib
import re

import pytest

ROOT = pathlib.Path(__file__).parent.parent


def read(name):
    return (ROOT / name).read_text()


class TestDesignDoc:
    def test_all_indexed_benchmarks_exist(self):
        referenced = set(
            re.findall(r"benchmarks/bench_[a-z0-9_]+\.py", read("DESIGN.md"))
        )
        assert referenced, "experiment index lists no benchmarks"
        for path in referenced:
            assert (ROOT / path).exists(), path

    def test_every_benchmark_is_indexed(self):
        referenced = set(
            re.findall(r"benchmarks/bench_[a-z0-9_]+\.py", read("DESIGN.md"))
        )
        on_disk = {
            f"benchmarks/{p.name}"
            for p in (ROOT / "benchmarks").glob("bench_*.py")
        }
        assert on_disk <= referenced, on_disk - referenced

    def test_inventory_names_importable_packages(self):
        import importlib

        for package in re.findall(r"`repro\.([a-z]+)`", read("DESIGN.md")):
            importlib.import_module(f"repro.{package}")


class TestReadme:
    def test_example_commands_exist(self):
        for path in re.findall(r"examples/[a-z_]+\.py", read("README.md")):
            assert (ROOT / path).exists(), path

    def test_every_example_is_listed(self):
        listed = set(re.findall(r"examples/[a-z_]+\.py", read("README.md")))
        on_disk = {
            f"examples/{p.name}" for p in (ROOT / "examples").glob("*.py")
        }
        assert on_disk <= listed, on_disk - listed

    def test_companion_docs_referenced_and_present(self):
        text = read("README.md")
        for name in ("DESIGN.md", "EXPERIMENTS.md"):
            assert name in text
            assert (ROOT / name).exists()


class TestExperimentsDoc:
    def test_references_real_outputs(self):
        for stem in re.findall(r"out/([a-z0-9_]+)\.txt", read("EXPERIMENTS.md")):
            bench_candidates = list(
                (ROOT / "benchmarks").glob("bench_*.py")
            )
            # Each referenced artifact must have a producing benchmark.
            producers = [
                p for p in bench_candidates if stem.split("_")[0] in p.name
            ]
            assert producers, stem

    def test_reproduction_commands_present(self):
        text = read("EXPERIMENTS.md")
        assert "pytest tests/" in text
        assert "pytest benchmarks/ --benchmark-only" in text


class TestDocsDirectory:
    @pytest.mark.parametrize(
        "name", ["architecture.md", "calibration.md", "extending.md",
                 "api.md", "limitations.md", "performance.md",
                 "observability.md", "service.md"]
    )
    def test_docs_exist_and_nonempty(self, name):
        path = ROOT / "docs" / name
        assert path.exists()
        assert len(path.read_text()) > 500

    def test_calibration_constants_match_source(self):
        """Spot-check documented constants against the code."""
        from repro.connectivity import wire
        from repro.memory import area, energy

        text = read("docs/calibration.md")
        assert f"| `GATES_PER_SRAM_BIT` | {area.GATES_PER_SRAM_BIT} |" in text
        assert f"| `PAD_CAP_PF` | {wire.PAD_CAP_PF} |" in text
        assert f"| `DRAM_ACTIVATE_NJ` | {int(energy.DRAM_ACTIVATE_NJ)} |" in text
