"""Shared fixtures: small traces, libraries, and simple architectures."""

from __future__ import annotations

import pytest

from repro.apex.architectures import MemoryArchitecture
from repro.channels import Channel
from repro.connectivity.architecture import (
    ConnectivityArchitecture,
    build_cluster,
)
from repro.connectivity.library import default_connectivity_library
from repro.memory.library import default_memory_library
from repro.trace.events import TraceBuilder
from repro.workloads import get_workload


@pytest.fixture(scope="session")
def mem_library():
    return default_memory_library()


@pytest.fixture(scope="session")
def conn_library():
    return default_connectivity_library()


@pytest.fixture(scope="session")
def compress_workload():
    return get_workload("compress", scale=0.12, seed=7)


@pytest.fixture(scope="session")
def compress_trace(compress_workload):
    return compress_workload.trace()


@pytest.fixture(scope="session")
def vocoder_workload():
    return get_workload("vocoder", scale=0.5, seed=7)


@pytest.fixture(scope="session")
def vocoder_trace(vocoder_workload):
    return vocoder_workload.trace()


@pytest.fixture
def tiny_trace():
    """A deterministic hand-built trace over two structures."""
    builder = TraceBuilder("tiny")
    base_a, base_b = 0x1000, 0x8000
    for i in range(64):
        builder.read(base_a + 4 * i, 4, "stream")
        builder.compute(2)
        builder.write(base_b + 8 * (i % 8), 8, "table")
    return builder.build()


@pytest.fixture
def cache_architecture(mem_library):
    """A traditional cache-only memory architecture."""
    cache = mem_library.get("cache_8k_32b_2w").instantiate("cache")
    dram = mem_library.get("dram").instantiate()
    return MemoryArchitecture(
        "cache_only", [cache], dram, {}, default_module="cache"
    )


def simple_connectivity(memory, trace, conn_library, cpu_preset="ahb"):
    """One on-chip component for all CPU channels + one off-chip bus."""
    channels = memory.channels(trace)
    on_chip = [c for c in channels if not c.crosses_chip]
    crossing = [c for c in channels if c.crosses_chip]
    clusters = []
    if on_chip:
        preset = conn_library.get(cpu_preset)
        clusters.append(build_cluster(on_chip, cpu_preset, preset.instantiate()))
    if crossing:
        preset = conn_library.get("offchip_16")
        clusters.append(
            build_cluster(crossing, "offchip_16", preset.instantiate())
        )
    return ConnectivityArchitecture("simple", clusters)


@pytest.fixture
def cache_connectivity(cache_architecture, tiny_trace, conn_library):
    return simple_connectivity(cache_architecture, tiny_trace, conn_library)


@pytest.fixture
def cpu_dram_channel():
    return Channel("cpu", "dram")
