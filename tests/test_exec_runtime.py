"""Tests for the persistent execution runtime (repro.exec.runtime).

Covers the shared-trace transport (export/attach roundtrips over every
transport), the runtime lifecycle (lazy pool, close idempotence,
closed-state errors, export memoization), dispatch equivalence (runtime
results bit-identical to serial), the process-wide default runtime's
grow-on-demand semantics, and the engine's estimate accounting
(estimates are ``uncached``, not hits or misses).
"""

import pickle

import pytest

from repro.apex.architectures import MemoryArchitecture
from repro.conex.estimator import estimate_design
from repro.errors import ExplorationError
from repro.exec.cache import NullCache
from repro.exec.engine import (
    EstimateJob,
    SimulationJob,
    estimate_many,
    simulate_many,
)
from repro.exec.runtime import (
    RUNTIME_ENV,
    ExecutionRuntime,
    default_runtime,
    persistent_runtime_enabled,
    set_default_runtime,
)
from repro.trace.events import TRACE_COLUMNS, Trace

from .conftest import simple_connectivity

_PRESETS = (
    "cache_4k_16b_1w",
    "cache_8k_32b_1w",
    "cache_8k_32b_2w",
    "cache_16k_32b_2w",
)


def _arch(mem_library, preset: str, name: str) -> MemoryArchitecture:
    cache = mem_library.get(preset).instantiate("cache")
    dram = mem_library.get("dram").instantiate()
    return MemoryArchitecture(name, [cache], dram, {}, "cache")


def _jobs(mem_library) -> list[SimulationJob]:
    return [
        SimulationJob(memory=_arch(mem_library, preset, f"m{i}"))
        for i, preset in enumerate(_PRESETS)
    ]


class TestSharedTraceTransport:
    @pytest.mark.parametrize("transport", ["auto", "shm", "file"])
    def test_roundtrip_is_lossless(self, tiny_trace, transport):
        with tiny_trace.export_shared(transport=transport) as export:
            attached = Trace.attach_shared(export.handle)
            assert attached.name == tiny_trace.name
            assert len(attached) == len(tiny_trace)
            for column in TRACE_COLUMNS:
                assert (
                    getattr(attached, column) == getattr(tiny_trace, column)
                ).all()

    def test_fingerprint_adopted_without_rehash(self, tiny_trace):
        with tiny_trace.export_shared() as export:
            attached = Trace.attach_shared(export.handle)
            assert attached.fingerprint() == tiny_trace.fingerprint()

    def test_attached_columns_are_read_only(self, tiny_trace):
        with tiny_trace.export_shared() as export:
            attached = Trace.attach_shared(export.handle)
            with pytest.raises(ValueError):
                attached.addresses[0] = 1

    def test_handle_is_picklable(self, tiny_trace):
        with tiny_trace.export_shared() as export:
            handle = pickle.loads(pickle.dumps(export.handle))
            attached = Trace.attach_shared(handle)
            assert (attached.addresses == tiny_trace.addresses).all()

    def test_close_is_idempotent(self, tiny_trace):
        export = tiny_trace.export_shared()
        export.close()
        assert export.closed
        export.close()


class TestRuntimeLifecycle:
    def test_serial_runtime_stays_inert(self, tiny_trace, mem_library):
        with ExecutionRuntime(workers=1) as runtime:
            results = runtime.map_simulations(tiny_trace, _jobs(mem_library))
            assert len(results) == len(_PRESETS)
            assert runtime._pool is None
            assert not runtime._exports

    def test_closed_runtime_rejects_work(self, tiny_trace, mem_library):
        runtime = ExecutionRuntime(workers=2)
        runtime.close()
        assert runtime.closed
        with pytest.raises(ExplorationError):
            runtime.map_simulations(tiny_trace, _jobs(mem_library))
        with pytest.raises(ExplorationError):
            runtime.share_trace(tiny_trace)

    def test_close_is_idempotent(self):
        runtime = ExecutionRuntime(workers=2)
        runtime.close()
        runtime.close()
        assert runtime.closed

    def test_share_trace_memoizes_per_fingerprint(self, tiny_trace):
        with ExecutionRuntime(workers=2) as runtime:
            first = runtime.share_trace(tiny_trace)
            second = runtime.share_trace(tiny_trace)
            assert first is second
            assert len(runtime._exports) == 1

    def test_pool_survives_across_batches(self, tiny_trace, mem_library):
        jobs = _jobs(mem_library)
        with ExecutionRuntime(workers=2) as runtime:
            runtime.map_simulations(tiny_trace, jobs[:2])
            pool = runtime._pool
            assert pool is not None
            runtime.map_simulations(tiny_trace, jobs[2:])
            assert runtime._pool is pool


class TestRuntimeDispatchEquivalence:
    def test_runtime_matches_serial_bit_identically(
        self, tiny_trace, mem_library
    ):
        jobs = _jobs(mem_library)
        serial = simulate_many(tiny_trace, jobs, workers=1, cache=NullCache())
        with ExecutionRuntime(workers=2) as runtime:
            pooled = simulate_many(
                tiny_trace, jobs, cache=NullCache(), runtime=runtime
            )
        assert pooled.workers == 2
        assert serial.results == pooled.results

    def test_repeated_batches_reuse_one_export(self, tiny_trace, mem_library):
        jobs = _jobs(mem_library)
        with ExecutionRuntime(workers=2) as runtime:
            first = simulate_many(
                tiny_trace, jobs, cache=NullCache(), runtime=runtime
            )
            second = simulate_many(
                tiny_trace, jobs, cache=NullCache(), runtime=runtime
            )
            assert len(runtime._exports) == 1
        assert first.results == second.results

    def test_estimates_through_runtime_match_direct(
        self, tiny_trace, mem_library, conn_library
    ):
        arch = _arch(mem_library, "cache_8k_32b_2w", "m")
        profile = simulate_many(
            tiny_trace, [SimulationJob(memory=arch)], cache=NullCache()
        ).results[0]
        connectivities = [
            simple_connectivity(arch, tiny_trace, conn_library, cpu)
            for cpu in ("ahb", "mux", "asb")
        ]
        jobs = [
            EstimateJob(memory=arch, connectivity=c, profile=profile)
            for c in connectivities
        ]
        with ExecutionRuntime(workers=2) as runtime:
            results = runtime.map_estimates(jobs)
        for connectivity, estimate in zip(connectivities, results):
            assert estimate == estimate_design(arch, connectivity, profile)


class TestDefaultRuntime:
    @pytest.fixture(autouse=True)
    def _isolate_default(self):
        previous = set_default_runtime(None)
        yield
        current = set_default_runtime(previous)
        if current is not None:
            current.close()

    def test_grows_on_demand_and_reuses_when_smaller(self):
        small = default_runtime(1)
        assert default_runtime(1) is small
        bigger = default_runtime(3)
        assert bigger is not small
        assert small.closed
        assert bigger.workers == 3
        assert default_runtime(2) is bigger

    def test_closed_default_is_replaced(self):
        first = default_runtime(2)
        first.close()
        second = default_runtime(2)
        assert second is not first
        assert not second.closed

    def test_env_opt_out_observed(self, monkeypatch):
        monkeypatch.setenv(RUNTIME_ENV, "0")
        assert not persistent_runtime_enabled()
        monkeypatch.setenv(RUNTIME_ENV, "1")
        assert persistent_runtime_enabled()
        monkeypatch.delenv(RUNTIME_ENV)
        assert persistent_runtime_enabled()


class TestEstimateAccounting:
    def test_estimates_count_as_uncached(
        self, tiny_trace, mem_library, conn_library
    ):
        arch = _arch(mem_library, "cache_8k_32b_2w", "m")
        profile = simulate_many(
            tiny_trace, [SimulationJob(memory=arch)], cache=NullCache()
        ).results[0]
        connectivity = simple_connectivity(arch, tiny_trace, conn_library)
        jobs = [
            EstimateJob(memory=arch, connectivity=connectivity, profile=profile)
        ] * 5
        report = estimate_many(jobs)
        assert report.cache_hits == 0
        assert report.cache_misses == 0
        assert report.uncached == len(jobs)
        assert (
            report.cache_hits + report.cache_misses + report.uncached
            == len(report.results)
        )

    def test_simulation_reports_keep_the_invariant(
        self, tiny_trace, mem_library
    ):
        jobs = _jobs(mem_library)
        report = simulate_many(tiny_trace, jobs, cache=NullCache())
        assert report.uncached == 0
        assert (
            report.cache_hits + report.cache_misses + report.uncached
            == len(report.results)
        )
