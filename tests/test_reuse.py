"""Unit tests for the locality analysis (reuse distance, working sets)."""

import numpy as np
import pytest

from repro.errors import TraceError
from repro.trace.events import TraceBuilder
from repro.trace.reuse import (
    hit_ratio_curve,
    reuse_distances,
    stride_histogram,
    working_set_profile,
)


def build(recorder):
    builder = TraceBuilder("t")
    recorder(builder)
    return builder.build()


class TestReuseDistances:
    def test_cold_accesses_are_minus_one(self):
        trace = build(
            lambda b: [b.read(0x1000 + 64 * i, 4, "s") for i in range(5)]
        )
        distances = reuse_distances(trace, block_bytes=32)
        assert (distances == -1).all()

    def test_immediate_reuse_is_zero(self):
        def record(b):
            b.read(0x1000, 4, "s")
            b.read(0x1000, 4, "s")

        distances = reuse_distances(build(record), block_bytes=32)
        assert list(distances) == [-1, 0]

    def test_stack_distance_counts_distinct_blocks(self):
        def record(b):
            b.read(0x0, 4, "s")      # A cold
            b.read(0x100, 4, "s")    # B cold
            b.read(0x200, 4, "s")    # C cold
            b.read(0x100, 4, "s")    # B: one distinct block (C) since
            b.read(0x0, 4, "s")      # A: two distinct (C, B)

        distances = reuse_distances(build(record), block_bytes=32)
        assert list(distances) == [-1, -1, -1, 1, 2]

    def test_duplicate_touch_does_not_inflate(self):
        def record(b):
            b.read(0x0, 4, "s")
            b.read(0x100, 4, "s")
            b.read(0x100, 4, "s")  # same block twice
            b.read(0x0, 4, "s")    # only one distinct block in between

        distances = reuse_distances(build(record), block_bytes=32)
        assert distances[-1] == 1

    def test_block_granularity(self):
        def record(b):
            b.read(0x1000, 4, "s")
            b.read(0x1010, 4, "s")  # same 32 B block

        distances = reuse_distances(build(record), block_bytes=32)
        assert list(distances) == [-1, 0]

    def test_struct_restriction(self, tiny_trace):
        all_distances = reuse_distances(tiny_trace)
        table_only = reuse_distances(tiny_trace, struct="table")
        assert len(table_only) == 64
        assert len(all_distances) == len(tiny_trace)

    def test_bad_block_size(self, tiny_trace):
        with pytest.raises(TraceError):
            reuse_distances(tiny_trace, block_bytes=24)


class TestHitRatioCurve:
    def test_monotone_in_capacity(self, compress_trace):
        distances = reuse_distances(compress_trace, block_bytes=32)
        curve = hit_ratio_curve(distances, [8, 32, 128, 512])
        values = list(curve.values())
        assert values == sorted(values)
        assert all(0.0 <= v <= 1.0 for v in values)

    def test_infinite_capacity_hits_all_warm(self):
        def record(b):
            for _ in range(3):
                for i in range(4):
                    b.read(0x1000 + 64 * i, 4, "s")

        distances = reuse_distances(build(record), block_bytes=32)
        curve = hit_ratio_curve(distances, [10_000])
        # 4 cold misses out of 12 accesses.
        assert curve[10_000] == pytest.approx(8 / 12)

    def test_matches_cache_upper_bound(self, compress_trace):
        """A real 2-way cache cannot beat the fully associative LRU
        bound at equal capacity."""
        from repro.memory.cache import Cache
        from repro.trace.events import AccessKind

        block = 32
        capacity_blocks = 128
        distances = reuse_distances(compress_trace, block_bytes=block)
        bound = hit_ratio_curve(distances, [capacity_blocks])[capacity_blocks]
        cache = Cache("c", capacity_blocks * block, block, 2)
        hits = 0
        for i in range(len(compress_trace)):
            response = cache.access(
                int(compress_trace.addresses[i]),
                int(compress_trace.sizes[i]),
                AccessKind(int(compress_trace.kinds[i])),
                i,
            )
            hits += response.hit
        assert hits / len(compress_trace) <= bound + 1e-9

    def test_validation(self):
        with pytest.raises(TraceError):
            hit_ratio_curve(np.array([], dtype=np.int64), [4])
        with pytest.raises(TraceError):
            hit_ratio_curve(np.array([1]), [0])


class TestWorkingSet:
    def test_stream_working_set_equals_window_blocks(self):
        trace = build(
            lambda b: [b.read(0x1000 + 32 * i, 4, "s") for i in range(200)]
        )
        profile = working_set_profile(trace, window=100, block_bytes=32)
        assert profile.peak == 100  # every access a new block

    def test_hot_loop_working_set_small(self):
        trace = build(
            lambda b: [b.read(0x1000 + 32 * (i % 4), 4, "s") for i in range(200)]
        )
        profile = working_set_profile(trace, window=100, block_bytes=32)
        assert profile.peak == 4
        assert profile.mean == 4.0

    def test_struct_restriction(self, tiny_trace):
        profile = working_set_profile(
            tiny_trace, window=32, block_bytes=32, struct="table"
        )
        assert profile.peak <= 2  # 8 slots x 8 B inside 64 B

    def test_validation(self, tiny_trace):
        with pytest.raises(TraceError):
            working_set_profile(tiny_trace, window=0)


class TestStrideHistogram:
    def test_pure_stream(self):
        trace = build(
            lambda b: [b.read(0x1000 + 4 * i, 4, "s") for i in range(100)]
        )
        histogram = stride_histogram(trace, "s")
        assert histogram[4] == pytest.approx(1.0)

    def test_top_limits_entries(self, compress_trace):
        histogram = stride_histogram(compress_trace, "hash_table", top=3)
        assert len(histogram) <= 3
        assert all(0 < f <= 1 for f in histogram.values())

    def test_single_access_struct_empty(self):
        def record(b):
            b.read(0x1000, 4, "one")
            b.read(0x2000, 4, "other")
            b.read(0x2004, 4, "other")

        assert stride_histogram(build(record), "one") == {}
