"""Unit tests for RunningStats, format_table, and make_rng."""

import math

import pytest

from repro.util.rng import make_rng
from repro.util.stats import RunningStats
from repro.util.tables import format_table


class TestRunningStats:
    def test_empty(self):
        stats = RunningStats()
        assert stats.count == 0
        assert stats.mean == 0.0
        assert stats.variance == 0.0
        assert stats.total == 0.0

    def test_single_value(self):
        stats = RunningStats()
        stats.add(5.0)
        assert stats.count == 1
        assert stats.mean == 5.0
        assert stats.minimum == 5.0
        assert stats.maximum == 5.0
        assert stats.variance == 0.0

    def test_mean_and_variance(self):
        stats = RunningStats()
        values = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
        stats.extend(values)
        assert stats.mean == pytest.approx(5.0)
        assert stats.variance == pytest.approx(4.0)
        assert stats.stddev == pytest.approx(2.0)
        assert stats.total == pytest.approx(sum(values))

    def test_min_max_tracking(self):
        stats = RunningStats()
        stats.extend([3.0, -1.0, 10.0])
        assert stats.minimum == -1.0
        assert stats.maximum == 10.0

    def test_merge_matches_combined(self):
        a, b, c = RunningStats(), RunningStats(), RunningStats()
        first = [1.0, 2.0, 3.0]
        second = [10.0, 20.0]
        a.extend(first)
        b.extend(second)
        c.extend(first + second)
        merged = a.merge(b)
        assert merged.count == c.count
        assert merged.mean == pytest.approx(c.mean)
        assert merged.variance == pytest.approx(c.variance)
        assert merged.minimum == c.minimum
        assert merged.maximum == c.maximum

    def test_merge_with_empty(self):
        a = RunningStats()
        a.extend([1.0, 2.0])
        empty = RunningStats()
        assert a.merge(empty).mean == pytest.approx(1.5)
        assert empty.merge(a).count == 2

    def test_variance_never_negative(self):
        stats = RunningStats()
        stats.extend([1e9, 1e9 + 1e-6, 1e9])
        assert stats.variance >= 0.0
        assert not math.isnan(stats.stddev)


class TestFormatTable:
    def test_alignment(self):
        out = format_table(["name", "v"], [("a", 1), ("long_name", 22)])
        lines = out.splitlines()
        assert lines[0].startswith("name")
        assert "long_name" in lines[3]
        # Header separator spans the header width.
        assert set(lines[1]) == {"-"}

    def test_title(self):
        out = format_table(["x"], [("1",)], title="My Table")
        assert out.splitlines()[0] == "My Table"

    def test_empty_rows(self):
        out = format_table(["a", "b"], [])
        assert "a" in out and "b" in out

    def test_extra_columns_in_rows(self):
        out = format_table(["a"], [("1", "2", "3")])
        assert "3" in out


class TestMakeRng:
    def test_deterministic_int_seed(self):
        assert make_rng(7).integers(0, 1000) == make_rng(7).integers(0, 1000)

    def test_deterministic_string_seed(self):
        a = make_rng("compress-1").random()
        b = make_rng("compress-1").random()
        assert a == b

    def test_distinct_string_seeds_differ(self):
        a = make_rng("alpha").random()
        b = make_rng("beta").random()
        assert a != b

    def test_none_seed_is_zero(self):
        assert make_rng(None).integers(0, 10**9) == make_rng(0).integers(0, 10**9)
