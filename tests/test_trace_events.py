"""Unit tests for Access / TraceBuilder / Trace."""

import numpy as np
import pytest

from repro.errors import TraceError
from repro.trace.events import Access, AccessKind, Trace, TraceBuilder


class TestTraceBuilder:
    def test_records_and_builds(self):
        builder = TraceBuilder("t")
        builder.read(0x100, 4, "a")
        builder.write(0x200, 8, "b")
        trace = builder.build()
        assert len(trace) == 2
        assert trace.name == "t"
        assert trace.structs == ("a", "b")

    def test_ticks_advance_per_access_and_compute(self):
        builder = TraceBuilder("t")
        builder.read(0, 4, "a")  # tick 0
        builder.compute(5)
        builder.read(4, 4, "a")  # tick 6
        trace = builder.build()
        assert list(trace.ticks) == [0, 6]
        assert trace.duration == 7

    def test_negative_compute_rejected(self):
        builder = TraceBuilder("t")
        with pytest.raises(TraceError):
            builder.compute(-1)

    def test_zero_size_rejected(self):
        builder = TraceBuilder("t")
        with pytest.raises(TraceError):
            builder.read(0, 0, "a")

    def test_negative_address_rejected(self):
        builder = TraceBuilder("t")
        with pytest.raises(TraceError):
            builder.write(-4, 4, "a")

    def test_empty_build_rejected(self):
        with pytest.raises(TraceError):
            TraceBuilder("empty").build()

    def test_struct_interning_order(self):
        builder = TraceBuilder("t")
        builder.read(0, 4, "z")
        builder.read(4, 4, "a")
        builder.read(8, 4, "z")
        assert builder.build().structs == ("z", "a")


class TestTrace:
    def make(self):
        builder = TraceBuilder("t")
        builder.read(0x10, 4, "a")
        builder.write(0x20, 8, "b")
        builder.read(0x14, 4, "a")
        return builder.build()

    def test_iteration_yields_accesses(self):
        accesses = list(self.make())
        assert accesses[0] == Access(0x10, 4, AccessKind.READ, "a", 0)
        assert accesses[1].kind == AccessKind.WRITE
        assert accesses[2].struct == "a"

    def test_total_bytes(self):
        assert self.make().total_bytes == 16

    def test_counts_by_struct(self):
        assert self.make().counts_by_struct() == {"a": 2, "b": 1}

    def test_struct_mask(self):
        trace = self.make()
        assert list(trace.struct_mask("a")) == [True, False, True]

    def test_unknown_struct_mask_raises(self):
        with pytest.raises(TraceError):
            self.make().struct_mask("nope")

    def test_arrays_are_read_only(self):
        trace = self.make()
        with pytest.raises(ValueError):
            trace.addresses[0] = 99

    def test_slice(self):
        trace = self.make()
        sub = trace.slice(1, 3)
        assert len(sub) == 2
        assert list(sub.addresses) == [0x20, 0x14]
        assert sub.structs == trace.structs

    def test_bad_slice_raises(self):
        trace = self.make()
        with pytest.raises(TraceError):
            trace.slice(2, 2)
        with pytest.raises(TraceError):
            trace.slice(0, 99)

    def test_mismatched_columns_rejected(self):
        with pytest.raises(TraceError):
            Trace(
                "bad",
                addresses=np.array([1, 2], dtype=np.int64),
                sizes=np.array([4], dtype=np.int32),
                kinds=np.array([0, 0], dtype=np.int8),
                struct_ids=np.array([0, 0], dtype=np.int32),
                ticks=np.array([0, 1], dtype=np.int64),
                structs=("a",),
            )

    def test_unknown_struct_id_rejected(self):
        with pytest.raises(TraceError):
            Trace(
                "bad",
                addresses=np.array([1], dtype=np.int64),
                sizes=np.array([4], dtype=np.int32),
                kinds=np.array([0], dtype=np.int8),
                struct_ids=np.array([3], dtype=np.int32),
                ticks=np.array([0], dtype=np.int64),
                structs=("a",),
            )


class TestFingerprint:
    def build(self, name="t", flip=False):
        builder = TraceBuilder(name)
        builder.read(0x100, 4, "a")
        builder.compute(3)
        builder.write(0x204 if flip else 0x200, 8, "b")
        return builder.build()

    def test_stable_across_rebuilds(self):
        assert self.build().fingerprint() == self.build().fingerprint()

    def test_memoized(self):
        trace = self.build()
        assert trace.fingerprint() is trace.fingerprint()

    def test_content_change_changes_fingerprint(self):
        assert self.build().fingerprint() != self.build(flip=True).fingerprint()

    def test_name_is_part_of_identity(self):
        assert (
            self.build("one").fingerprint() != self.build("two").fingerprint()
        )

    def test_looks_like_sha256(self):
        fingerprint = self.build().fingerprint()
        assert len(fingerprint) == 64
        assert set(fingerprint) <= set("0123456789abcdef")
