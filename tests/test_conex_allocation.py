"""Unit tests for cluster→component allocation and the estimator."""

import pytest

from repro.apex.architectures import MemoryArchitecture
from repro.channels import Channel
from repro.conex.allocation import compatible_presets, enumerate_assignments
from repro.conex.brg import build_brg
from repro.conex.clustering import LogicalConnection, clustering_levels
from repro.conex.estimator import estimate_design
from repro.errors import ExplorationError
from repro.sim import simulate


@pytest.fixture(scope="module")
def setup(mem_library_module, conn_library_module):
    from repro.workloads import get_workload

    trace = get_workload("compress", scale=0.12, seed=7).trace()
    cache = mem_library_module.get("cache_8k_32b_2w").instantiate("cache")
    dma = mem_library_module.get("si_dma_32").instantiate("dma")
    dram = mem_library_module.get("dram").instantiate()
    arch = MemoryArchitecture(
        "m",
        [cache, dma],
        dram,
        {"hash_table": "dma", "code_table": "dma"},
        "cache",
    )
    profile = simulate(trace, arch)
    brg = build_brg(arch, profile)
    return trace, arch, profile, brg


@pytest.fixture(scope="module")
def mem_library_module():
    from repro.memory.library import default_memory_library

    return default_memory_library()


@pytest.fixture(scope="module")
def conn_library_module():
    from repro.connectivity.library import default_connectivity_library

    return default_connectivity_library()


class TestCompatiblePresets:
    def test_on_chip_cluster_gets_on_chip_presets(self, conn_library_module):
        cluster = LogicalConnection(
            channels=(Channel("cpu", "cache"),),
            bandwidth=1.0,
            crosses_chip=False,
        )
        names = {p.name for p in compatible_presets(cluster, conn_library_module)}
        assert "ahb" in names and "dedicated" in names
        assert not any(n.startswith("offchip") for n in names)

    def test_crossing_cluster_gets_off_chip_presets(self, conn_library_module):
        cluster = LogicalConnection(
            channels=(Channel("cache", "dram"),),
            bandwidth=1.0,
            crosses_chip=True,
        )
        names = {p.name for p in compatible_presets(cluster, conn_library_module)}
        assert names == {"offchip_16", "offchip_32"}

    def test_port_limits_filter(self, conn_library_module):
        cluster = LogicalConnection(
            channels=(
                Channel("cpu", "a"),
                Channel("cpu", "b"),
                Channel("cpu", "c"),
                Channel("cpu", "d"),
                Channel("cpu", "e"),
            ),
            bandwidth=1.0,
            crosses_chip=False,
        )
        names = {p.name for p in compatible_presets(cluster, conn_library_module)}
        assert "dedicated" not in names  # 6 endpoints > 2 ports
        assert "mux" not in names  # > 4 ports
        assert "ahb" in names


class TestEnumerateAssignments:
    def test_counts_are_product_of_choices(self, setup, conn_library_module):
        _, _, _, brg = setup
        levels = clustering_levels(brg)
        final = levels[-1]  # one on-chip + one crossing cluster
        assignments = enumerate_assignments(final, conn_library_module)
        on_chip_choices = len(conn_library_module.on_chip_choices())
        off_choices = len(conn_library_module.off_chip_choices())
        # dedicated supports only 2 ports; the merged on-chip cluster
        # has 3 endpoints, so it drops out; mux may survive.
        assert len(assignments) <= on_chip_choices * off_choices
        assert len(assignments) >= (on_chip_choices - 2) * off_choices

    def test_every_assignment_implements_all_channels(
        self, setup, conn_library_module
    ):
        _, _, _, brg = setup
        level = clustering_levels(brg)[0]
        for connectivity in enumerate_assignments(level, conn_library_module):
            assert set(connectivity.channels()) == set(brg.channels)

    def test_max_assignments_thins_deterministically(
        self, setup, conn_library_module
    ):
        _, _, _, brg = setup
        level = clustering_levels(brg)[0]
        full = enumerate_assignments(level, conn_library_module, max_assignments=4096)
        thinned = enumerate_assignments(level, conn_library_module, max_assignments=10)
        assert len(thinned) == 10
        full_signatures = {c.preset_signature() for c in full}
        assert all(c.preset_signature() in full_signatures for c in thinned)
        again = enumerate_assignments(level, conn_library_module, max_assignments=10)
        assert [c.preset_signature() for c in thinned] == [
            c.preset_signature() for c in again
        ]

    def test_bad_limit_rejected(self, setup, conn_library_module):
        _, _, _, brg = setup
        level = clustering_levels(brg)[0]
        with pytest.raises(ExplorationError):
            enumerate_assignments(level, conn_library_module, max_assignments=0)


class TestEstimator:
    def test_estimate_tracks_simulation_ordering(
        self, setup, conn_library_module
    ):
        """Phase-I fidelity: estimates rank designs like simulation."""
        trace, arch, profile, brg = setup
        level = clustering_levels(brg)[0]
        assignments = enumerate_assignments(
            level, conn_library_module, max_assignments=12
        )
        pairs = []
        for connectivity in assignments:
            estimate = estimate_design(arch, connectivity, profile)
            result = simulate(trace, arch, connectivity)
            pairs.append((estimate.avg_latency, result.avg_latency))
        estimates = [p[0] for p in pairs]
        actuals = [p[1] for p in pairs]
        # Rank correlation (Spearman) must be strongly positive.
        from scipy.stats import spearmanr

        rho, _ = spearmanr(estimates, actuals)
        assert rho > 0.6

    def test_estimate_cost_matches_simulated_cost(
        self, setup, conn_library_module
    ):
        trace, arch, profile, brg = setup
        level = clustering_levels(brg)[-1]
        connectivity = enumerate_assignments(level, conn_library_module)[0]
        estimate = estimate_design(arch, connectivity, profile)
        result = simulate(trace, arch, connectivity)
        assert estimate.cost_gates == pytest.approx(result.cost_gates)

    def test_estimate_latency_at_least_ideal(self, setup, conn_library_module):
        _, arch, profile, brg = setup
        level = clustering_levels(brg)[0]
        connectivity = enumerate_assignments(
            level, conn_library_module, max_assignments=1
        )[0]
        estimate = estimate_design(arch, connectivity, profile)
        assert estimate.avg_latency >= profile.avg_latency
        assert estimate.avg_energy_nj >= profile.avg_energy_nj

    def test_mismatched_profile_rejected(
        self, setup, conn_library_module, mem_library_module
    ):
        trace, arch, profile, brg = setup
        other = MemoryArchitecture(
            "other", [], mem_library_module.get("dram").instantiate(), {}, "dram"
        )
        other_profile = simulate(trace, other)
        level = clustering_levels(brg)[0]
        connectivity = enumerate_assignments(
            level, conn_library_module, max_assignments=1
        )[0]
        with pytest.raises(ExplorationError):
            estimate_design(arch, connectivity, other_profile)
