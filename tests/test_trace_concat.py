"""Tests for trace concatenation and the new per-struct statistics."""

import pytest

from repro.errors import TraceError
from repro.sim import simulate
from repro.trace import concatenate_traces
from repro.trace.events import TraceBuilder


def make(name, structs):
    builder = TraceBuilder(name)
    for i, struct in enumerate(structs):
        builder.read(0x1000 * (1 + hash(struct) % 4) + 4 * i, 4, struct)
        builder.compute(1)
    return builder.build()


class TestConcatenate:
    def test_lengths_and_name(self):
        combined = concatenate_traces([make("a", "xxy"), make("b", "yz")])
        assert len(combined) == 5
        assert combined.name == "a+b"

    def test_custom_name(self):
        combined = concatenate_traces([make("a", "x")], name="solo")
        assert combined.name == "solo"

    def test_struct_merge_by_name(self):
        combined = concatenate_traces([make("a", "xy"), make("b", "yx")])
        assert set(combined.structs) == {"x", "y"}
        assert combined.counts_by_struct() == {"x": 2, "y": 2}

    def test_ticks_rebased_and_monotone(self):
        first = make("a", "xx")
        second = make("b", "yy")
        combined = concatenate_traces([first, second])
        ticks = list(combined.ticks)
        assert ticks == sorted(ticks)
        assert ticks[2] >= first.duration

    def test_duration_is_sum(self):
        first = make("a", "xxx")
        second = make("b", "yy")
        combined = concatenate_traces([first, second])
        assert combined.duration == first.duration + second.duration

    def test_empty_rejected(self):
        with pytest.raises(TraceError):
            concatenate_traces([])

    def test_single_pass_through(self):
        trace = make("a", "xyz")
        combined = concatenate_traces([trace])
        assert len(combined) == len(trace)
        assert combined.structs == trace.structs

    def test_concatenated_trace_simulates(self, cache_architecture):
        phases = [make("p1", "abcabc"), make("p2", "cba")]
        combined = concatenate_traces(phases)
        result = simulate(combined, cache_architecture)
        assert result.accesses == 9


class TestStructLatencyStats:
    def test_shares_sum_to_one(self, compress_trace, cache_architecture):
        result = simulate(compress_trace, cache_architecture)
        assert sum(s.share for s in result.structs.values()) == pytest.approx(1.0)

    def test_counts_match_trace(self, compress_trace, cache_architecture):
        result = simulate(compress_trace, cache_architecture)
        for struct, stats in result.structs.items():
            assert stats.accesses == compress_trace.counts_by_struct()[struct]

    def test_mean_latencies_weighted_average(
        self, compress_trace, cache_architecture
    ):
        result = simulate(compress_trace, cache_architecture)
        weighted = sum(
            s.mean_latency * s.accesses for s in result.structs.values()
        ) / result.accesses
        assert weighted == pytest.approx(result.avg_latency)

    def test_pointer_chasing_structs_cost_more(
        self, compress_trace, cache_architecture
    ):
        result = simulate(compress_trace, cache_architecture)
        assert (
            result.structs["hash_table"].mean_latency
            > result.structs["input_stream"].mean_latency
        )

    def test_sampled_runs_report_measured_only(
        self, compress_trace, cache_architecture
    ):
        from repro.sim import SamplingConfig

        result = simulate(
            compress_trace,
            cache_architecture,
            sampling=SamplingConfig(on_window=400, off_ratio=9, warmup=50),
        )
        measured = sum(s.accesses for s in result.structs.values())
        assert measured == result.sampled_accesses
