"""Unit tests for BRG construction and hierarchical clustering."""

import pytest

from repro.channels import Channel
from repro.conex.brg import build_brg
from repro.conex.clustering import clustering_levels
from repro.errors import ExplorationError
from repro.sim import simulate


@pytest.fixture(scope="module")
def brg(compress_trace_module, compress_arch_module):
    profile = simulate(compress_trace_module, compress_arch_module)
    return build_brg(compress_arch_module, profile)


@pytest.fixture(scope="module")
def compress_trace_module(request):
    from repro.workloads import get_workload

    return get_workload("compress", scale=0.12, seed=7).trace()


@pytest.fixture(scope="module")
def compress_arch_module(compress_trace_module):
    from repro.apex.architectures import MemoryArchitecture
    from repro.memory.library import default_memory_library

    library = default_memory_library()
    cache = library.get("cache_8k_32b_2w").instantiate("cache")
    sb = library.get("stream_buffer_4").instantiate("sb")
    dma = library.get("si_dma_32").instantiate("dma")
    dram = library.get("dram").instantiate()
    return MemoryArchitecture(
        "rich",
        [cache, sb, dma],
        dram,
        {
            "input_stream": "sb",
            "hash_table": "dma",
            "code_table": "dma",
        },
        "cache",
    )


class TestBrg:
    def test_arcs_match_architecture_channels(
        self, brg, compress_arch_module, compress_trace_module
    ):
        expected = set(compress_arch_module.channels(compress_trace_module))
        assert set(brg.channels) == expected

    def test_bandwidth_positive_and_ordered(self, brg):
        bandwidths = [brg.bandwidth(c) for c in brg.channels]
        assert all(b >= 0 for b in bandwidths)
        assert bandwidths == sorted(bandwidths, reverse=True)

    def test_cpu_dma_is_hot(self, brg):
        # The hash table dominates compress: its CPU channel out-ranks
        # the stream buffer's.
        assert brg.bandwidth(Channel("cpu", "dma")) > brg.bandwidth(
            Channel("cpu", "sb")
        )

    def test_domain_partition(self, brg):
        on_chip = brg.on_chip_channels()
        crossing = brg.crossing_channels()
        assert set(on_chip) | set(crossing) == set(brg.channels)
        assert all(not c.crosses_chip for c in on_chip)
        assert all(c.crosses_chip for c in crossing)

    def test_networkx_export(self, brg):
        graph = brg.to_networkx()
        assert graph.number_of_edges() == len(brg.channels)
        assert "cpu" in graph

    def test_unknown_arc_raises(self, brg):
        with pytest.raises(ExplorationError):
            brg.arc(Channel("cpu", "ghost"))

    def test_mismatched_profile_rejected(
        self, compress_trace_module, compress_arch_module, mem_library
    ):
        from repro.apex.architectures import MemoryArchitecture

        other = MemoryArchitecture(
            "other", [], mem_library.get("dram").instantiate(), {}, "dram"
        )
        profile = simulate(compress_trace_module, other)
        with pytest.raises(ExplorationError):
            build_brg(compress_arch_module, profile)

    def test_describe(self, brg):
        text = brg.describe()
        assert "BRG" in text and "B/cyc" in text


class TestClustering:
    def test_level_zero_is_singletons(self, brg):
        levels = clustering_levels(brg)
        assert levels[0].size == len(brg.channels)
        assert all(len(c.channels) == 1 for c in levels[0].clusters)

    def test_sizes_strictly_decrease(self, brg):
        levels = clustering_levels(brg)
        sizes = [level.size for level in levels]
        assert sizes == sorted(sizes, reverse=True)
        assert len(set(sizes)) == len(sizes)

    def test_final_level_one_cluster_per_domain(self, brg):
        last = clustering_levels(brg)[-1]
        domains = [c.crosses_chip for c in last.clusters]
        assert sorted(domains) == [False, True]

    def test_no_cross_domain_merge(self, brg):
        for level in clustering_levels(brg):
            for cluster in level.clusters:
                crossing = {c.crosses_chip for c in cluster.channels}
                assert len(crossing) == 1

    def test_merges_lowest_bandwidth_first(self, brg):
        levels = clustering_levels(brg)
        first_merge = levels[1]
        merged = [c for c in first_merge.clusters if len(c.channels) > 1]
        assert len(merged) == 1
        merged_bw = {brg.bandwidth(c) for c in merged[0].channels}
        # The merged pair had the two smallest bandwidths of its domain.
        domain = merged[0].crosses_chip
        domain_bws = sorted(
            brg.bandwidth(c)
            for c in brg.channels
            if c.crosses_chip is domain
        )
        assert merged_bw == set(domain_bws[:2]) or len(merged_bw) == 1

    def test_cluster_bandwidth_is_cumulative(self, brg):
        for level in clustering_levels(brg):
            for cluster in level.clusters:
                total = sum(brg.bandwidth(c) for c in cluster.channels)
                assert cluster.bandwidth == pytest.approx(total)

    def test_channels_conserved_at_every_level(self, brg):
        all_channels = set(brg.channels)
        for level in clustering_levels(brg):
            seen = [c for cluster in level.clusters for c in cluster.channels]
            assert set(seen) == all_channels
            assert len(seen) == len(all_channels)
