"""Tests for channel utilization accounting."""

import pytest

from repro.apex.architectures import MemoryArchitecture
from repro.sim import simulate
from repro.sim.metrics import ChannelTraffic
from tests.conftest import simple_connectivity


class TestUtilizationMetric:
    def test_bounds(self):
        traffic = ChannelTraffic(
            channel_name="x", transactions=1, bytes_moved=4,
            total_wait_cycles=0, busy_cycles=50,
        )
        assert traffic.utilization(100) == 0.5
        assert traffic.utilization(25) == 1.0  # clamped
        assert traffic.utilization(0) == 0.0

    def test_ideal_connectivity_reports_zero_busy(
        self, tiny_trace, cache_architecture
    ):
        result = simulate(tiny_trace, cache_architecture)
        for traffic in result.channels.values():
            assert traffic.busy_cycles == 0

    def test_real_connectivity_accumulates_busy(
        self, compress_trace, mem_library, conn_library
    ):
        cache = mem_library.get("cache_4k_16b_1w").instantiate("cache")
        dram = mem_library.get("dram").instantiate()
        architecture = MemoryArchitecture("a", [cache], dram, {}, "cache")
        connectivity = simple_connectivity(
            architecture, compress_trace, conn_library
        )
        result = simulate(compress_trace, architecture, connectivity)
        cpu = result.channels["cpu->cache"]
        backing = result.channels["cache->dram"]
        assert cpu.busy_cycles > 0
        assert backing.busy_cycles > 0
        assert 0.0 < cpu.utilization(result.total_cycles) < 1.0
        # A small cache saturates the narrow off-chip bus.
        assert backing.utilization(result.total_cycles) > 0.5

    def test_bigger_cache_relieves_backing_utilization(
        self, compress_trace, mem_library, conn_library
    ):
        utilizations = {}
        for preset in ("cache_4k_16b_1w", "cache_32k_32b_2w"):
            cache = mem_library.get(preset).instantiate("cache")
            dram = mem_library.get("dram").instantiate()
            architecture = MemoryArchitecture("a", [cache], dram, {}, "cache")
            connectivity = simple_connectivity(
                architecture, compress_trace, conn_library
            )
            result = simulate(compress_trace, architecture, connectivity)
            backing = result.channels["cache->dram"]
            utilizations[preset] = backing.utilization(result.total_cycles)
        assert utilizations["cache_32k_32b_2w"] < utilizations["cache_4k_16b_1w"]

    def test_busy_bounded_by_run_length(
        self, compress_trace, mem_library, conn_library
    ):
        cache = mem_library.get("cache_8k_32b_2w").instantiate("cache")
        dram = mem_library.get("dram").instantiate()
        architecture = MemoryArchitecture("a", [cache], dram, {}, "cache")
        connectivity = simple_connectivity(
            architecture, compress_trace, conn_library
        )
        result = simulate(compress_trace, architecture, connectivity)
        for traffic in result.channels.values():
            assert traffic.busy_cycles <= result.total_cycles * 1.05
