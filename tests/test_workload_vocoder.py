"""Unit tests for the LPC vocoder workload."""

import numpy as np
import pytest

from repro.trace.events import AccessKind
from repro.workloads import VocoderWorkload
from repro.workloads.vocoder import ENCODED_FRAME_BYTES, FRAME_SAMPLES


@pytest.fixture(scope="module")
def trace():
    return VocoderWorkload(scale=0.5, seed=2).trace()


def test_structures(trace):
    assert set(trace.structs) == {
        "speech_in",
        "frame_buf",
        "autocorr",
        "lpc_coeffs",
        "encoded_out",
        "misc",
    }


def test_speech_in_is_monotone_stream(trace):
    mask = trace.struct_mask("speech_in")
    addresses = trace.addresses[mask]
    assert (np.diff(addresses) > 0).all()
    assert (trace.kinds[mask] == int(AccessKind.READ)).all()


def test_frame_buffer_footprint_small(trace):
    mask = trace.struct_mask("frame_buf")
    addresses = trace.addresses[mask]
    assert addresses.max() - addresses.min() < FRAME_SAMPLES * 4


def test_frame_buffer_reused_across_frames(trace):
    mask = trace.struct_mask("frame_buf")
    addresses = trace.addresses[mask]
    unique = len(np.unique(addresses))
    assert unique < len(addresses) / 4  # heavy reuse


def test_output_written_per_frame(trace):
    frames = max(1, int(VocoderWorkload.base_frames * 0.5))
    mask = trace.struct_mask("encoded_out")
    writes = int(mask.sum())
    assert writes == frames * (ENCODED_FRAME_BYTES // 4)


def test_scale_controls_frames():
    small = VocoderWorkload(scale=0.25, seed=1).trace()
    large = VocoderWorkload(scale=1.0, seed=1).trace()
    assert len(large) > 3 * len(small)


def test_determinism():
    a = VocoderWorkload(scale=0.25, seed=5).trace()
    b = VocoderWorkload(scale=0.25, seed=5).trace()
    assert (a.addresses == b.addresses).all()
    assert (a.ticks == b.ticks).all()


def test_coefficient_arrays_are_scalar_class(trace):
    for struct in ("autocorr", "lpc_coeffs"):
        mask = trace.struct_mask(struct)
        addresses = trace.addresses[mask]
        assert addresses.max() - addresses.min() <= 64
