"""Golden equivalence: the columnar kernel vs the reference loop.

The contract of :mod:`repro.sim.kernels` is exact — not approximate —
equality: for any trace, architecture, connectivity, sampling, and
write model, ``run(reference=False)`` must return a
:class:`SimulationResult` equal field-for-field (including every float,
stats dict, and per-channel counter) to ``run(reference=True)``. This
suite asserts it across all five workloads × sampling on/off × posted
writes on/off × {ideal, AMBA, mux} connectivity, plus module-level
batch-vs-scalar property checks for each ``supports_batch`` module.

The cross-candidate batch evaluator (:func:`repro.exec.simulate_batch`)
inherits the same contract: its per-candidate results must be
bit-identical to independent runs and to the reference, for pure
columnar groups, DMA (replay-walk) members, and singleton groups alike,
under any ordering of the submitted job list.
"""

from __future__ import annotations

import functools
import itertools

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.apex.architectures import MemoryArchitecture
from repro.connectivity.architecture import (
    ConnectivityArchitecture,
    build_cluster,
)
from repro.connectivity.library import default_connectivity_library
from repro.exec import NullCache, SimulationJob, simulate_batch
from repro.memory.cache import Cache, WritePolicy
from repro.memory.dram import Dram
from repro.memory.library import default_memory_library, mixed_architecture
from repro.memory.stream_buffer import StreamBuffer
from repro.sim.batch import clear_plan_registry
from repro.sim.kernels import MIN_BATCH_SPAN, _batch_spans, reference_requested
from repro.sim.sampling import SamplingConfig
from repro.sim.simulator import simulate
from repro.trace.events import AccessKind, TraceBuilder
from repro.workloads import get_workload

#: Scales chosen so every workload's trace spans multiple sampling
#: periods (so batched spans actually run) while the grid stays fast.
WORKLOAD_SCALES = {
    "compress": 0.12,
    "li": 0.08,
    "vocoder": 0.5,
    "dct": 1.0,
    "matmul": 1.0,
}

#: Small windows → many on/off transitions per trace.
SAMPLING = SamplingConfig(on_window=256, off_ratio=9, warmup=32)

CONNECTIVITY_MODES = ("ideal", "amba", "mux")

MEM_LIBRARY = default_memory_library()
CONN_LIBRARY = default_connectivity_library()


@functools.lru_cache(maxsize=None)
def _trace(workload: str):
    return get_workload(workload, scale=WORKLOAD_SCALES[workload], seed=7).trace()


@functools.lru_cache(maxsize=None)
def _architecture(workload: str):
    return mixed_architecture(_trace(workload), MEM_LIBRARY)


def _connectivity(memory, trace, mode: str):
    if mode == "ideal":
        return None
    channels = memory.channels(trace)
    on_chip = [c for c in channels if not c.crosses_chip]
    crossing = [c for c in channels if c.crosses_chip]
    clusters = []
    if mode == "amba":
        if on_chip:
            preset = CONN_LIBRARY.get("ahb")
            clusters.append(build_cluster(on_chip, "ahb", preset.instantiate()))
    else:
        # Point-to-point muxes: one component per on-chip channel.
        preset = CONN_LIBRARY.get("mux")
        for channel in on_chip:
            clusters.append(
                build_cluster([channel], "mux", preset.instantiate())
            )
    if crossing:
        preset = CONN_LIBRARY.get("offchip_16")
        clusters.append(
            build_cluster(crossing, "offchip_16", preset.instantiate())
        )
    return ConnectivityArchitecture(mode, clusters)


GRID = list(
    itertools.product(
        sorted(WORKLOAD_SCALES),
        ("unsampled", "sampled"),
        (False, True),
        CONNECTIVITY_MODES,
    )
)


@pytest.mark.parametrize("workload,sampling_mode,posted,conn_mode", GRID)
def test_kernel_matches_reference(workload, sampling_mode, posted, conn_mode):
    trace = _trace(workload)
    memory = _architecture(workload)
    connectivity = _connectivity(memory, trace, conn_mode)
    sampling = SAMPLING if sampling_mode == "sampled" else None
    reference = simulate(
        trace, memory, connectivity, sampling, posted, reference=True
    )
    kernel = simulate(
        trace, memory, connectivity, sampling, posted, reference=False
    )
    # SimulationResult is a frozen dataclass: == covers every numeric
    # field, the module/channel/struct stats dicts, and the energy
    # breakdown, all compared exactly.
    assert kernel == reference


#: DMA-heavy grid: tick-dependent modules force the segmented engine,
#: crossed with sampling, posted writes, and connectivity so the
#: synchronization-point walk is exercised against every contention
#: regime (including whole-trace scalar residues when unsampled).
DMA_GRID = list(
    itertools.product(
        ("unsampled", "sampled"),
        (False, True),
        CONNECTIVITY_MODES,
        ("si_dma_32", "ll_dma_32"),
    )
)


@pytest.mark.parametrize("sampling_mode,posted,conn_mode,dma_preset", DMA_GRID)
def test_kernel_matches_reference_with_dma(
    sampling_mode, posted, conn_mode, dma_preset
):
    """DMA-mapped structures run segmented; results stay exact."""
    trace = _trace("li")
    memory = mixed_architecture(trace, MEM_LIBRARY, dma_preset=dma_preset)
    connectivity = _connectivity(memory, trace, conn_mode)
    sampling = SAMPLING if sampling_mode == "sampled" else None
    reference = simulate(
        trace, memory, connectivity, sampling, posted, reference=True
    )
    kernel = simulate(
        trace, memory, connectivity, sampling, posted, reference=False
    )
    assert kernel == reference


def test_environment_opt_out(monkeypatch):
    """``REPRO_REFERENCE_SIM=1`` routes default runs to the reference."""
    monkeypatch.delenv("REPRO_REFERENCE_SIM", raising=False)
    assert not reference_requested()
    for value in ("1", "true", "YES", " on "):
        monkeypatch.setenv("REPRO_REFERENCE_SIM", value)
        assert reference_requested()
    monkeypatch.setenv("REPRO_REFERENCE_SIM", "0")
    assert not reference_requested()
    # Either way the result is the same object value.
    trace = _trace("matmul")
    memory = _architecture("matmul")
    monkeypatch.setenv("REPRO_REFERENCE_SIM", "1")
    via_env = simulate(trace, memory, None, SAMPLING)
    via_env_unsampled = simulate(trace, memory, None, None)
    monkeypatch.delenv("REPRO_REFERENCE_SIM")
    assert simulate(trace, memory, None, SAMPLING) == via_env
    # Unsampled cross-check: the env-routed reference equals the
    # default kernel on a whole-trace run too.
    assert simulate(trace, memory, None, None) == via_env_unsampled


def test_batch_span_segmentation():
    """Only maximal fast runs of at least MIN_BATCH_SPAN batch."""
    fast = np.zeros(1000, dtype=bool)
    fast[100:200] = True  # long enough
    fast[300 : 300 + MIN_BATCH_SPAN - 1] = True  # one short
    fast[900:1000] = True  # runs to the end
    assert _batch_spans(fast) == [(100, 200), (900, 1000)]
    assert _batch_spans(np.ones(5, dtype=bool)) == []
    assert _batch_spans(np.ones(MIN_BATCH_SPAN, dtype=bool)) == [
        (0, MIN_BATCH_SPAN)
    ]
    assert _batch_spans(np.zeros(MIN_BATCH_SPAN, dtype=bool)) == []


# -- module-level batch-vs-scalar properties --------------------------------


def _random_columns(seed: int, n: int = 600, span: int = 1 << 14):
    rng = np.random.default_rng(seed)
    mixed = np.where(
        rng.random(n) < 0.6,
        np.cumsum(rng.integers(1, 9, n)) % span,  # mostly sequential
        rng.integers(0, span, n),  # with random jumps
    )
    return (
        mixed.astype(np.int64),
        rng.choice([1, 2, 4, 8], n).astype(np.int32),
        rng.integers(0, 2, n).astype(np.int8),
    )


def _scalar_replay(module, addresses, sizes, kinds):
    columns = ([], [], [], [], [])
    for i in range(len(addresses)):
        response = module.access(
            int(addresses[i]),
            int(sizes[i]),
            AccessKind(int(kinds[i])),
            tick=0,
        )
        for column, value in zip(
            columns,
            (
                response.hit,
                response.latency,
                response.refill_bytes,
                response.writeback_bytes,
                response.prefetch_bytes,
            ),
        ):
            column.append(value)
    return columns


def _assert_batch_matches(make_module, seed):
    addresses, sizes, kinds = _random_columns(seed)
    scalar_module, batch_module = make_module(), make_module()
    hits, latencies, refills, writebacks, prefetches = _scalar_replay(
        scalar_module, addresses, sizes, kinds
    )
    # Split in two to check state carries across batch boundaries.
    mid = len(addresses) // 3
    halves = [
        batch_module.access_many(addresses[:mid], sizes[:mid], kinds[:mid]),
        batch_module.access_many(addresses[mid:], sizes[mid:], kinds[mid:]),
    ]

    def merged(field):
        parts = []
        for half, count in zip(halves, (mid, len(addresses) - mid)):
            column = getattr(half, field)
            parts.append(
                np.zeros(count, dtype=np.int64) if column is None else column
            )
        return np.concatenate(parts)

    assert merged("hit").astype(bool).tolist() == hits
    assert merged("latency").tolist() == latencies
    assert merged("refill_bytes").tolist() == refills
    assert merged("writeback_bytes").tolist() == writebacks
    assert merged("prefetch_bytes").tolist() == prefetches
    assert (scalar_module.hits, scalar_module.misses) == (
        batch_module.hits,
        batch_module.misses,
    )


@pytest.mark.parametrize("seed", [0, 1, 2, 3])
@pytest.mark.parametrize(
    "policy", [WritePolicy.WRITE_BACK, WritePolicy.WRITE_THROUGH]
)
def test_cache_access_many_matches_access(seed, policy):
    _assert_batch_matches(
        lambda: Cache(
            "c", capacity=2048, line_size=32, associativity=2,
            write_policy=policy,
        ),
        seed,
    )


@pytest.mark.parametrize("seed", [0, 1, 2, 3])
@pytest.mark.parametrize("depth", [2, 4])
def test_stream_buffer_access_many_matches_access(seed, depth):
    _assert_batch_matches(
        lambda: StreamBuffer("s", depth=depth, line_size=32), seed
    )


# -- property tests: random traces vs the reference -------------------------
#
# Hypothesis drives randomly shaped traces through both engines. Two
# properties matter most to the batched kernel: (a) tick-dependent
# modules (DMA engines) advanced in chunked segments between
# synchronization points must land in exactly the state the
# access-by-access reference leaves them in, and (b) the compacted
# on-window contention walk must reproduce every per-channel wait/busy
# counter. ``SimulationResult`` equality covers both, but the channel
# counters are also asserted explicitly so a regression names the
# broken accounting rather than just "results differ".


@st.composite
def _random_traces(draw):
    seed = draw(st.integers(min_value=0, max_value=1 << 20))
    n = draw(st.integers(min_value=64, max_value=320))
    max_gap = draw(st.integers(min_value=0, max_value=3))
    rng = np.random.default_rng(seed)
    builder = TraceBuilder(f"prop_{seed}_{n}_{max_gap}")
    # A fixed cyclic pointer chain: re-traversals make the linked-list
    # DMA's stable-pointer recovery (and its burst path) actually fire.
    chain = [int(c) * 16 for c in rng.permutation(24)]
    cursor = 0
    for _ in range(n):
        choice = int(rng.integers(0, 4))
        if choice == 0:
            builder.read(chain[cursor % len(chain)], 4, "chain")
            cursor += 1
        elif choice == 1:
            builder.read(int(rng.integers(0, 1 << 9)) * 4, 4, "stream")
        elif choice == 2:
            builder.write(int(rng.integers(0, 1 << 12)), 8, "table")
        else:
            builder.read(
                int(rng.integers(0, 1 << 12)),
                int(rng.choice([1, 2, 4, 8])),
                "table",
            )
        if max_gap:
            builder.compute(int(rng.integers(0, max_gap + 1)))
    return builder.build()


#: Tight windows relative to the 64–320-access traces above, so every
#: example crosses several on/off boundaries.
_PROP_SAMPLING = SamplingConfig(on_window=32, off_ratio=3, warmup=8)

_PROP_SETTINGS = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@_PROP_SETTINGS
@given(
    trace=_random_traces(),
    dma_preset=st.sampled_from(["si_dma_32", "ll_dma_32"]),
    posted=st.booleans(),
    sampled=st.booleans(),
)
def test_property_tick_dependent_modules_match_reference(
    trace, dma_preset, posted, sampled
):
    """Chunked segment advancement equals access-by-access stepping."""
    memory = MemoryArchitecture(
        "prop_dma",
        [
            MEM_LIBRARY.get(dma_preset).instantiate("dma"),
            MEM_LIBRARY.get("cache_4k_16b_1w").instantiate("cache"),
        ],
        MEM_LIBRARY.get("dram_4bank").instantiate(),
        {"chain": "dma", "stream": "cache"},
        "dram",
    )
    sampling = _PROP_SAMPLING if sampled else None
    reference = simulate(trace, memory, None, sampling, posted, reference=True)
    kernel = simulate(trace, memory, None, sampling, posted, reference=False)
    assert kernel == reference


@_PROP_SETTINGS
@given(
    trace=_random_traces(),
    conn_mode=st.sampled_from(["amba", "mux"]),
    posted=st.booleans(),
    sampled=st.booleans(),
)
def test_property_channel_contention_matches_reference(
    trace, conn_mode, posted, sampled
):
    """The vectorized contention pass reproduces every channel counter."""
    memory = mixed_architecture(trace, MEM_LIBRARY)
    connectivity = _connectivity(memory, trace, conn_mode)
    sampling = _PROP_SAMPLING if sampled else None
    reference = simulate(
        trace, memory, connectivity, sampling, posted, reference=True
    )
    kernel = simulate(
        trace, memory, connectivity, sampling, posted, reference=False
    )
    assert kernel == reference
    assert set(kernel.channels) == set(reference.channels)
    for name, channel in kernel.channels.items():
        mirror = reference.channels[name]
        assert channel.total_wait_cycles == mirror.total_wait_cycles, name
        assert channel.busy_cycles == mirror.busy_cycles, name
        assert channel.transactions == mirror.transactions, name


# -- cross-candidate batch evaluation (perf6) -------------------------------
#
# :func:`repro.exec.simulate_batch` evaluates same-memory-signature
# candidates as one planned job, sharing the trace plan and module
# outcome columns across the group. Its contract is the same exactness
# as the kernel itself: every per-candidate result must equal an
# independent ``simulate()`` call bit for bit — and, transitively, the
# scalar reference. The grid below asserts both directly; the
# mixed-group test adds DMA (replay-walk) members and a singleton
# group; the Hypothesis property pins the signature partitioning as
# order-independent (``results[i]`` tracks ``jobs[i]`` under any
# permutation of the submitted list).

BATCH_GRID = list(
    itertools.product(("li", "dct"), ("unsampled", "sampled"), (False, True))
)


@pytest.mark.parametrize("workload,sampling_mode,posted", BATCH_GRID)
def test_simulate_batch_matches_run_and_reference(
    workload, sampling_mode, posted
):
    trace = _trace(workload)
    memory = _architecture(workload)
    sampling = SAMPLING if sampling_mode == "sampled" else None
    jobs = [
        SimulationJob(
            memory=memory,
            connectivity=_connectivity(memory, trace, mode),
            sampling=sampling,
            posted_writes=posted,
        )
        for mode in CONNECTIVITY_MODES
    ]
    report = simulate_batch(trace, jobs, workers=1, cache=NullCache())
    assert report.batch_groups == 1  # one memory signature → one group
    assert len(report.results) == len(jobs)
    for job, result in zip(jobs, report.results):
        independent = simulate(
            trace, memory, job.connectivity, sampling, posted
        )
        assert result == independent
        reference = simulate(
            trace, memory, job.connectivity, sampling, posted, reference=True
        )
        assert result == reference


def test_simulate_batch_mixed_groups_and_dma_members():
    """DMA members, varied sampling/posted, and a singleton group."""
    trace = _trace("li")
    plain = _architecture("li")
    si_dma = mixed_architecture(trace, MEM_LIBRARY, dma_preset="si_dma_32")
    ll_dma = mixed_architecture(trace, MEM_LIBRARY, dma_preset="ll_dma_32")
    jobs = []
    # Group 1: the plain architecture with per-member sampling and
    # posted-write deltas — sharing is keyed on memory signature only,
    # so members of one group may disagree on everything else.
    for mode in CONNECTIVITY_MODES:
        jobs.append(
            SimulationJob(
                memory=plain,
                connectivity=_connectivity(plain, trace, mode),
                sampling=None if mode == "amba" else SAMPLING,
                posted_writes=(mode == "mux"),
            )
        )
    # Group 2: DMA-mapped structures route through the replay walk.
    for mode in ("ideal", "amba"):
        jobs.append(
            SimulationJob(
                memory=si_dma,
                connectivity=_connectivity(si_dma, trace, mode),
                sampling=SAMPLING,
            )
        )
    # Group 3: a single-member group still round-trips the batch path.
    jobs.append(
        SimulationJob(
            memory=ll_dma,
            connectivity=_connectivity(ll_dma, trace, "mux"),
            posted_writes=True,
        )
    )
    clear_plan_registry()  # cover the cold plan build too
    report = simulate_batch(trace, jobs, workers=1, cache=NullCache())
    assert report.batch_groups == 3
    assert len(report.results) == len(jobs)
    for job, result in zip(jobs, report.results):
        independent = simulate(
            trace,
            job.memory,
            job.connectivity,
            job.sampling,
            job.posted_writes,
        )
        assert result == independent
        reference = simulate(
            trace,
            job.memory,
            job.connectivity,
            job.sampling,
            job.posted_writes,
            reference=True,
        )
        assert result == reference


@functools.lru_cache(maxsize=None)
def _permutation_pool():
    """Fixed six-job pool spanning two memory signatures, plus each
    job's expected result (computed once via independent simulation)."""
    trace = _trace("li")
    pool = []
    for memory in (
        _architecture("li"),
        mixed_architecture(trace, MEM_LIBRARY, dma_preset="si_dma_32"),
    ):
        for mode in CONNECTIVITY_MODES:
            pool.append(
                SimulationJob(
                    memory=memory,
                    connectivity=_connectivity(memory, trace, mode),
                    sampling=_PROP_SAMPLING,
                    posted_writes=(mode == "mux"),
                )
            )
    expected = tuple(
        simulate(
            trace,
            job.memory,
            job.connectivity,
            job.sampling,
            job.posted_writes,
        )
        for job in pool
    )
    return tuple(pool), expected


@_PROP_SETTINGS
@given(order=st.permutations(list(range(6))))
def test_property_batch_partitioning_order_independent(order):
    """``results[i]`` tracks ``jobs[i]`` whatever order groups arrive in."""
    pool, expected = _permutation_pool()
    jobs = [pool[i] for i in order]
    report = simulate_batch(_trace("li"), jobs, workers=1, cache=NullCache())
    assert report.batch_groups == 2
    for position, original in enumerate(order):
        assert report.results[position] == expected[original]


@pytest.mark.parametrize("seed", [0, 1, 2])
@pytest.mark.parametrize("banks", [1, 4])
def test_dram_open_row_latencies_match_access(seed, banks):
    addresses, sizes, kinds = _random_columns(seed, span=1 << 18)
    scalar, batched = (
        Dram("d", row_bytes=1024, banks=banks) for _ in range(2)
    )
    expected = [
        scalar.access(int(a), int(s), AccessKind(int(k)), tick=0).latency
        for a, s, k in zip(addresses, sizes, kinds)
    ]
    mid = len(addresses) // 2
    got = np.concatenate(
        [
            batched.open_row_latencies(addresses[:mid]),
            batched.open_row_latencies(addresses[mid:]),
        ]
    )
    assert got.tolist() == expected
    assert (scalar.accesses, scalar.page_hits) == (
        batched.accesses,
        batched.page_hits,
    )
    assert scalar._open_rows == batched._open_rows
