"""Property-based tests over synthetic BRGs: clustering + allocation."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.channels import Channel
from repro.conex.allocation import compatible_presets, enumerate_assignments
from repro.conex.brg import ArcProfile, BandwidthRequirementGraph
from repro.conex.clustering import clustering_levels
from repro.connectivity.library import default_connectivity_library

CONNECTIVITY_LIBRARY = default_connectivity_library()


@st.composite
def synthetic_brg(draw):
    """A random BRG: 1-5 on-chip modules with random bandwidths."""
    module_count = draw(st.integers(min_value=1, max_value=5))
    modules = [f"m{i}" for i in range(module_count)]
    backed = draw(
        st.lists(
            st.booleans(), min_size=module_count, max_size=module_count
        )
    )
    arcs = {}
    duration = 10_000
    for i, module in enumerate(modules):
        cpu_bw = draw(
            st.floats(min_value=0.001, max_value=4.0, allow_nan=False)
        )
        channel = Channel("cpu", module)
        arcs[channel] = ArcProfile(
            channel=channel,
            bandwidth=cpu_bw,
            bytes_moved=int(cpu_bw * duration),
            transactions=max(1, int(cpu_bw * duration / 4)),
            background_transactions=0,
        )
        if backed[i]:
            back_bw = draw(
                st.floats(min_value=0.001, max_value=2.0, allow_nan=False)
            )
            back = Channel(module, "dram")
            arcs[back] = ArcProfile(
                channel=back,
                bandwidth=back_bw,
                bytes_moved=int(back_bw * duration),
                transactions=max(1, int(back_bw * duration / 32)),
                background_transactions=0,
            )
    return BandwidthRequirementGraph(
        memory_name="synthetic", duration=duration, arcs=arcs
    )


class TestClusteringProperties:
    @settings(max_examples=60, deadline=None)
    @given(synthetic_brg())
    def test_channels_conserved_at_every_level(self, brg):
        all_channels = set(brg.channels)
        for level in clustering_levels(brg):
            seen = [
                channel
                for cluster in level.clusters
                for channel in cluster.channels
            ]
            assert set(seen) == all_channels
            assert len(seen) == len(all_channels)

    @settings(max_examples=60, deadline=None)
    @given(synthetic_brg())
    def test_level_sizes_strictly_decrease_to_domain_count(self, brg):
        levels = clustering_levels(brg)
        sizes = [level.size for level in levels]
        assert sizes[0] == len(brg.channels)
        assert all(a - b == 1 for a, b in zip(sizes, sizes[1:]))
        domains = {c.crosses_chip for c in brg.channels}
        assert sizes[-1] == len(domains)

    @settings(max_examples=60, deadline=None)
    @given(synthetic_brg())
    def test_no_cross_domain_merges(self, brg):
        for level in clustering_levels(brg):
            for cluster in level.clusters:
                assert len({c.crosses_chip for c in cluster.channels}) == 1

    @settings(max_examples=60, deadline=None)
    @given(synthetic_brg())
    def test_cumulative_bandwidth_conserved(self, brg):
        total = sum(brg.bandwidth(c) for c in brg.channels)
        for level in clustering_levels(brg):
            level_total = sum(cluster.bandwidth for cluster in level.clusters)
            assert abs(level_total - total) < 1e-9 * max(1.0, total)


class TestAllocationProperties:
    @settings(max_examples=30, deadline=None)
    @given(synthetic_brg())
    def test_every_assignment_is_valid_and_complete(self, brg):
        level = clustering_levels(brg)[-1]
        assignments = enumerate_assignments(
            level, CONNECTIVITY_LIBRARY, max_assignments=24
        )
        assert assignments
        for connectivity in assignments:
            assert set(connectivity.channels()) == set(brg.channels)

    @settings(max_examples=30, deadline=None)
    @given(synthetic_brg())
    def test_compatible_presets_respect_domain(self, brg):
        for level in clustering_levels(brg):
            for cluster in level.clusters:
                for preset in compatible_presets(cluster, CONNECTIVITY_LIBRARY):
                    assert preset.off_chip_capable == cluster.crosses_chip

    @settings(max_examples=20, deadline=None)
    @given(synthetic_brg())
    def test_assignments_deterministic(self, brg):
        level = clustering_levels(brg)[-1]
        first = enumerate_assignments(
            level, CONNECTIVITY_LIBRARY, max_assignments=16
        )
        second = enumerate_assignments(
            level, CONNECTIVITY_LIBRARY, max_assignments=16
        )
        assert [c.preset_signature() for c in first] == [
            c.preset_signature() for c in second
        ]
