"""Unit tests for ConnectivityArchitecture and the connectivity library."""

import pytest

from repro.channels import Channel
from repro.connectivity.architecture import (
    ClusterAssignment,
    ConnectivityArchitecture,
    build_cluster,
    dram_backing_latency,
)
from repro.connectivity.library import default_connectivity_library
from repro.errors import ConfigurationError, LibraryError


@pytest.fixture
def library():
    return default_connectivity_library()


def cpu_cache():
    return Channel("cpu", "cache")


def cache_dram():
    return Channel("cache", "dram")


class TestConnectivityLibrary:
    def test_population(self, library):
        assert "ahb" in library and "offchip_16" in library
        assert len(library.on_chip_choices()) >= 5
        assert len(library.off_chip_choices()) >= 2

    def test_off_chip_flags_consistent(self, library):
        for preset in library.off_chip_choices():
            assert not preset.build().on_chip
        for preset in library.on_chip_choices():
            assert preset.build().on_chip

    def test_unknown_raises(self, library):
        with pytest.raises(LibraryError):
            library.get("hypertransport")

    def test_instantiate_renames(self, library):
        component = library.get("ahb").instantiate("bus0")
        assert component.name == "bus0"


class TestClusterAssignment:
    def test_endpoints_sorted_unique(self, library):
        cluster = build_cluster(
            [cpu_cache(), Channel("cpu", "sram")],
            "ahb",
            library.get("ahb").instantiate(),
        )
        assert cluster.endpoints == ("cache", "cpu", "sram")

    def test_crossing_flag(self, library):
        off = build_cluster(
            [cache_dram()], "offchip_16", library.get("offchip_16").instantiate()
        )
        assert off.crosses_chip


class TestConnectivityArchitectureValidation:
    def test_mixed_domain_cluster_rejected(self, library):
        with pytest.raises(ConfigurationError):
            ConnectivityArchitecture(
                "bad",
                [
                    build_cluster(
                        [cpu_cache(), cache_dram()],
                        "offchip_16",
                        library.get("offchip_16").instantiate(),
                    )
                ],
            )

    def test_on_chip_component_cannot_cross(self, library):
        with pytest.raises(ConfigurationError):
            ConnectivityArchitecture(
                "bad",
                [build_cluster([cache_dram()], "ahb", library.get("ahb").instantiate())],
            )

    def test_off_chip_component_wasted_on_chip(self, library):
        with pytest.raises(ConfigurationError):
            ConnectivityArchitecture(
                "bad",
                [
                    build_cluster(
                        [cpu_cache()],
                        "offchip_16",
                        library.get("offchip_16").instantiate(),
                    )
                ],
            )

    def test_port_limit_enforced(self, library):
        channels = [Channel("cpu", f"m{i}") for i in range(4)]
        with pytest.raises(ConfigurationError):
            ConnectivityArchitecture(
                "bad",
                [
                    build_cluster(
                        channels, "dedicated", library.get("dedicated").instantiate()
                    )
                ],
            )

    def test_duplicate_channel_rejected(self, library):
        with pytest.raises(ConfigurationError):
            ConnectivityArchitecture(
                "bad",
                [
                    build_cluster([cpu_cache()], "ahb", library.get("ahb").instantiate()),
                    build_cluster([cpu_cache()], "asb", library.get("asb").instantiate()),
                ],
            )

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            ConnectivityArchitecture("bad", [])


class TestConnectivityArchitectureQueries:
    def make(self, library):
        return ConnectivityArchitecture(
            "conn",
            [
                build_cluster([cpu_cache()], "ahb", library.get("ahb").instantiate()),
                build_cluster(
                    [cache_dram()], "offchip_16", library.get("offchip_16").instantiate()
                ),
            ],
        )

    def test_component_lookup(self, library):
        conn = self.make(library)
        assert conn.component_for(cpu_cache()).kind == "ahb"
        assert conn.component_for(cache_dram()).kind == "offchip"

    def test_unknown_channel_raises(self, library):
        conn = self.make(library)
        with pytest.raises(ConfigurationError):
            conn.cluster_for(Channel("cpu", "ghost"))

    def test_cost_and_energy(self, library, cache_architecture):
        conn = self.make(library)
        cost = conn.cost_gates(cache_architecture)
        assert cost > 0
        energy = conn.energy_nj_per_byte(cache_dram(), cache_architecture)
        assert energy > conn.energy_nj_per_byte(cpu_cache(), cache_architecture)

    def test_preset_signature_dedup(self, library):
        a = self.make(library)
        b = self.make(library)
        assert a.preset_signature() == b.preset_signature()

    def test_describe_lists_clusters(self, library):
        text = self.make(library).describe()
        assert "ahb" in text and "cpu->cache" in text

    def test_backing_latency_helper(self, library, cache_architecture):
        conn = self.make(library)
        latency = dram_backing_latency(conn, cache_architecture, cache_dram(), 16)
        component = conn.component_for(cache_dram())
        assert latency == component.timing(16).latency + 20
