"""Golden regression tests.

The whole pipeline is deterministic (string-seeded RNGs, no wall-clock
or hash randomization), so exact values can be pinned for fixed seeds.
These tests exist to catch *unintentional* behavioural drift: if a
model change legitimately moves a number, update the golden value in
the same commit and say why.
"""

import pytest

from repro.apex.architectures import MemoryArchitecture
from repro.connectivity import default_connectivity_library
from repro.memory import default_memory_library
from repro.sim import simulate
from repro.workloads import get_workload
from tests.conftest import simple_connectivity


@pytest.fixture(scope="module")
def golden_setup():
    library = default_memory_library()
    trace = get_workload("vocoder", scale=0.25, seed=42).trace()
    cache = library.get("cache_4k_16b_1w").instantiate("cache")
    architecture = MemoryArchitecture(
        "g", [cache], library.get("dram").instantiate(), {}, "cache"
    )
    return trace, architecture


class TestGoldenTraces:
    def test_vocoder_trace_shape(self, golden_setup):
        trace, _ = golden_setup
        assert len(trace) == 2370
        assert trace.duration == 2954
        assert trace.total_bytes == 9432

    def test_compress_trace_shape(self):
        trace = get_workload("compress", scale=0.1, seed=42).trace()
        assert len(trace) == 4024
        assert trace.duration == 6657


class TestGoldenSimulation:
    def test_ideal_connectivity(self, golden_setup):
        trace, architecture = golden_setup
        result = simulate(trace, architecture)
        assert result.avg_latency == pytest.approx(2.9240506329113924)
        assert result.avg_energy_nj == pytest.approx(4.768472573839896)
        assert result.miss_ratio == pytest.approx(0.11645569620253164)
        assert result.total_cycles == 7514

    def test_real_connectivity(self, golden_setup):
        trace, architecture = golden_setup
        connectivity = simple_connectivity(
            architecture, trace, default_connectivity_library()
        )
        result = simulate(trace, architecture, connectivity)
        assert result.avg_latency == pytest.approx(8.234599156118144)
        assert result.avg_energy_nj == pytest.approx(5.265601229641344)
        assert result.cost_gates == pytest.approx(82832.83674686673)
        assert result.total_cycles == 20100

    def test_repeat_simulation_identical(self, golden_setup):
        trace, architecture = golden_setup
        first = simulate(trace, architecture)
        second = simulate(trace, architecture)
        assert first.avg_latency == second.avg_latency
        assert first.avg_energy_nj == second.avg_energy_nj
        assert first.total_cycles == second.total_cycles
