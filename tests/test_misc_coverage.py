"""Coverage tests for smaller behaviours across the library."""

import numpy as np
import pytest

from repro.apex.architectures import MemoryArchitecture
from repro.apex.explorer import ApexConfig, explore_memory_architectures
from repro.conex.explorer import ConExConfig, connectivity_exploration
from repro.errors import ConfigurationError
from repro.sim import simulate


class TestConExConfigKnobs:
    def test_min_logical_connections_skips_fine_levels(
        self, compress_trace, compress_workload, mem_library, conn_library
    ):
        apex = explore_memory_architectures(
            compress_trace,
            mem_library,
            ApexConfig(
                cache_options=("cache_4k_16b_1w",),
                stream_buffer_options=("stream_buffer_4",),
                dma_options=("si_dma_32",),
                map_indexed_to_sram=(False,),
                select_count=1,
            ),
            hints=compress_workload.pattern_hints,
        )
        evaluated = apex.selected[0]
        coarse_only = ConExConfig(
            max_logical_connections=3,
            min_logical_connections=2,
            max_assignments_per_level=16,
        )
        _, points = connectivity_exploration(
            compress_trace, evaluated, conn_library, coarse_only
        )
        sizes = {len(p.connectivity.clusters) for p in points}
        assert sizes <= {2, 3}
        assert points

    def test_duplicate_signatures_deduplicated(
        self, compress_trace, compress_workload, mem_library, conn_library
    ):
        apex = explore_memory_architectures(
            compress_trace,
            mem_library,
            ApexConfig(
                cache_options=("cache_4k_16b_1w",),
                stream_buffer_options=(None,),
                dma_options=(None,),
                map_indexed_to_sram=(False,),
                select_count=1,
            ),
            hints=compress_workload.pattern_hints,
        )
        _, points = connectivity_exploration(
            compress_trace,
            apex.selected[0],
            conn_library,
            ConExConfig(max_logical_connections=4, max_assignments_per_level=64),
        )
        signatures = [p.connectivity.preset_signature() for p in points]
        assert len(signatures) == len(set(signatures))


class TestDescribeMethods:
    def test_module_describe(self, mem_library):
        for name in ("cache_8k_32b_2w", "sram_4k", "stream_buffer_4",
                     "si_dma_32", "ll_dma_32"):
            module = mem_library.get(name).instantiate()
            text = module.describe()
            assert module.kind in text

    def test_component_repr(self, conn_library):
        component = conn_library.get("ahb").instantiate()
        assert "AhbBus" in repr(component)

    def test_architecture_repr(self, cache_architecture):
        assert "cache_only" in repr(cache_architecture)

    def test_simulator_repr(self, tiny_trace, cache_architecture):
        from repro.sim import Simulator

        simulator = Simulator(tiny_trace, cache_architecture)
        assert "ideal" in repr(simulator)


class TestCliNewWorkloads:
    @pytest.mark.parametrize("name", ["dct", "matmul"])
    def test_trace_command(self, name, capsys):
        from repro.cli import main

        assert main(["trace", name, "--scale", "0.5"]) == 0
        out = capsys.readouterr().out
        assert "accesses" in out


class TestArchitectureEdges:
    def test_architecture_without_modules_is_uncached(
        self, mem_library, tiny_trace
    ):
        dram = mem_library.get("dram").instantiate()
        architecture = MemoryArchitecture("u", [], dram, {}, "dram")
        result = simulate(tiny_trace, architecture)
        assert result.memory_cost_gates == 0.0
        assert result.miss_ratio == 1.0

    def test_two_srams(self, mem_library, tiny_trace):
        sram_a = mem_library.get("sram_1k").instantiate("sram_a")
        sram_b = mem_library.get("sram_1k").instantiate("sram_b")
        dram = mem_library.get("dram").instantiate()
        architecture = MemoryArchitecture(
            "two",
            [sram_a, sram_b],
            dram,
            {"stream": "sram_a", "table": "sram_b"},
            "dram",
        )
        result = simulate(tiny_trace, architecture)
        assert result.miss_ratio == 0.0
        assert result.modules["sram_a"].accesses == 64
        assert result.modules["sram_b"].accesses == 64

    @pytest.mark.parametrize("batch", [False, True])
    def test_negative_latency_guard(self, mem_library, tiny_trace, batch):
        """Modules returning nonsense latencies are caught.

        Covered for both kernel paths: ``batch=True`` keeps the broken
        scalar/batched pair in lockstep (the columnar engine's
        vectorized guard fires), ``batch=False`` honours the
        ``supports_batch`` contract for a scalar-only override (the
        scalar residue's guard fires).
        """
        from repro.errors import SimulationError
        from repro.memory.sram import Sram

        class BrokenSram(Sram):
            supports_batch = batch

            def access(self, address, size, kind, tick):
                response = super().access(address, size, kind, tick)
                return type(response)(hit=True, latency=-5)

            def access_many(self, addresses, sizes, kinds):
                response = super().access_many(addresses, sizes, kinds)
                return type(response)(
                    hit=response.hit,
                    latency=np.full(len(addresses), -5, dtype=np.int64),
                )

        broken = BrokenSram("bad", 4096)
        dram = mem_library.get("dram").instantiate()
        architecture = MemoryArchitecture(
            "b", [broken], dram, {"stream": "bad", "table": "bad"}, "dram"
        )
        with pytest.raises(SimulationError):
            simulate(tiny_trace, architecture)


class TestWorkloadRegistryCompleteness:
    def test_all_seven_registered(self):
        from repro.workloads import workload_names

        assert set(workload_names()) == {
            "compress",
            "dct",
            "li",
            "matmul",
            "spmv",
            "synthetic",
            "vocoder",
        }

    @pytest.mark.parametrize(
        "name",
        ["compress", "dct", "li", "matmul", "spmv", "synthetic", "vocoder"],
    )
    def test_hints_cover_trace_structs(self, name):
        from repro.workloads import get_workload

        workload = get_workload(name, scale=0.1, seed=2)
        trace = workload.trace()
        assert set(workload.pattern_hints) >= set(trace.structs)

    def test_scale_validation_uniform(self):
        from repro.workloads import get_workload

        with pytest.raises(ConfigurationError):
            get_workload("matmul", scale=-1.0)
