"""Integration tests for socket workers, the remote backend, and the
networked cache layer — everything here runs over real loopback
sockets against in-process :class:`~repro.exec.worker.WorkerServer`
instances.
"""

import os
import subprocess
import sys

import pytest

from repro.apex.architectures import MemoryArchitecture
from repro.errors import ExecutionError
from repro.exec import (
    EstimateJob,
    NullCache,
    RemoteBackend,
    SerialBackend,
    ShardedBackend,
    SimulationCache,
    SimulationJob,
    simulate_batch,
    simulate_many,
)
from repro.exec import net
from repro.exec.cache import (
    KERNEL_PLAN_VERSION,
    CacheClient,
    _NET_FAULT_LIMIT,
)
from repro.exec.worker import WorkerServer

from .conftest import simple_connectivity

_PRESETS = (
    "cache_4k_16b_1w",
    "cache_8k_32b_1w",
    "cache_8k_32b_2w",
    "cache_16k_32b_2w",
)


def _arch(mem_library, preset: str, name: str) -> MemoryArchitecture:
    cache = mem_library.get(preset).instantiate("cache")
    dram = mem_library.get("dram").instantiate()
    return MemoryArchitecture(name, [cache], dram, {}, "cache")


def _jobs(mem_library) -> list[SimulationJob]:
    return [
        SimulationJob(memory=_arch(mem_library, preset, f"m{i}"))
        for i, preset in enumerate(_PRESETS)
    ]


@pytest.fixture
def worker():
    server = WorkerServer()
    server.start()
    yield server
    server.stop()


@pytest.fixture
def worker_pair():
    servers = [WorkerServer(), WorkerServer()]
    for server in servers:
        server.start()
    yield servers
    for server in servers:
        server.stop()


class TestWireProtocol:
    def test_trace_roundtrip(self, tiny_trace):
        rebuilt = net.decode_trace(net.encode_trace(tiny_trace))
        assert rebuilt.fingerprint() == tiny_trace.fingerprint()
        assert rebuilt.name == tiny_trace.name
        assert rebuilt.structs == tiny_trace.structs

    def test_parse_address(self):
        assert net.parse_address("127.0.0.1:80") == ("127.0.0.1", 80)
        with pytest.raises(ExecutionError):
            net.parse_address("no-port")
        with pytest.raises(ExecutionError):
            net.parse_address("host:notaport")

    def test_ping(self, worker):
        backend = RemoteBackend(worker.address)
        assert backend.ping()
        backend.close()

    def test_hello_rejects_version_skew(self, worker):
        with net.Connection.connect(worker.address) as conn:
            with pytest.raises(ExecutionError, match="version skew"):
                conn.request_pickled(
                    net.MSG_HELLO,
                    {
                        "protocol": net.PROTOCOL_VERSION,
                        "kernel_plan_version": KERNEL_PLAN_VERSION + 1,
                    },
                )

    def test_connect_refused_is_backend_unavailable(self):
        dead = WorkerServer()
        dead.stop()  # bound then closed: nothing listens here now
        with pytest.raises(net.BackendUnavailable):
            net.Connection.connect(dead.address)


class TestRemoteBackend:
    def test_simulations_match_serial(self, worker, tiny_trace, mem_library):
        jobs = _jobs(mem_library)
        serial = SerialBackend().run_simulations(tiny_trace, jobs)
        with RemoteBackend(worker.address) as backend:
            remote = backend.run_simulations(tiny_trace, jobs)
            assert remote == serial
            assert backend.bytes_sent > 0
            assert backend.bytes_received > 0

    def test_groups_match_serial(self, worker, tiny_trace, mem_library):
        jobs = _jobs(mem_library)
        groups = [jobs[:2], jobs[2:]]
        serial = SerialBackend().run_groups(tiny_trace, groups)
        with RemoteBackend(worker.address) as backend:
            assert backend.run_groups(tiny_trace, groups) == serial

    def test_estimates_match_serial(
        self, worker, tiny_trace, mem_library, conn_library
    ):
        memory = _arch(mem_library, "cache_8k_32b_2w", "e0")
        connectivity = simple_connectivity(memory, tiny_trace, conn_library)
        profile = simulate_many(
            tiny_trace, [SimulationJob(memory=memory)], cache=NullCache()
        ).results[0]
        jobs = [
            EstimateJob(
                memory=memory, connectivity=connectivity, profile=profile
            )
        ]
        serial = SerialBackend().run_estimates(jobs)
        with RemoteBackend(worker.address) as backend:
            assert backend.run_estimates(jobs) == serial

    def test_trace_ships_once_per_worker(
        self, worker, tiny_trace, mem_library
    ):
        jobs = _jobs(mem_library)
        trace_bytes = len(net.encode_trace(tiny_trace))
        with RemoteBackend(worker.address) as backend:
            backend.run_simulations(tiny_trace, jobs)
            after_first = backend.bytes_sent
            assert after_first > trace_bytes  # push happened
            backend.run_simulations(tiny_trace, jobs)
            second_run = backend.bytes_sent - after_first
            # The second dispatch references the fingerprint alone: no
            # re-push, not even a TRACE_QUERY round trip.
            assert second_run < trace_bytes

    def test_engine_report_carries_traffic(
        self, worker, tiny_trace, mem_library
    ):
        jobs = _jobs(mem_library)
        reference = simulate_batch(
            tiny_trace, jobs, workers=1, cache=NullCache()
        )
        with RemoteBackend(worker.address) as backend:
            report = simulate_batch(
                tiny_trace, jobs, cache=NullCache(), backend=backend
            )
        assert report.results == reference.results
        assert report.backend == "remote"
        assert report.bytes_sent > 0 and report.bytes_received > 0

    def test_job_error_propagates_not_fault(self, worker, tiny_trace):
        bad = SimulationJob(memory=None)  # simulate() will blow up remotely
        with RemoteBackend(worker.address) as backend:
            with pytest.raises(ExecutionError, match="remote worker error"):
                backend.run_simulations(tiny_trace, [bad])
            # The worker survived the failed request.
            assert backend.ping()


class TestShardedRemote:
    def test_two_workers_bit_identical(
        self, worker_pair, tiny_trace, mem_library
    ):
        jobs = _jobs(mem_library)
        reference = simulate_batch(
            tiny_trace, jobs, workers=1, cache=NullCache()
        )
        backend = ShardedBackend(
            [RemoteBackend(server.address) for server in worker_pair]
        )
        with backend:
            report = simulate_batch(
                tiny_trace, jobs, cache=NullCache(), backend=backend
            )
        assert report.results == reference.results
        assert report.backend == "sharded"
        assert all(server.requests_served > 0 for server in worker_pair)

    def test_kill_one_worker_redispatches(
        self, worker_pair, tiny_trace, mem_library
    ):
        jobs = _jobs(mem_library)
        reference = simulate_batch(
            tiny_trace, jobs, workers=1, cache=NullCache()
        )
        backend = ShardedBackend(
            [RemoteBackend(server.address) for server in worker_pair]
        )
        worker_pair[1].stop()  # dies before the batch is dispatched
        with backend:
            report = simulate_batch(
                tiny_trace, jobs, cache=NullCache(), backend=backend
            )
        assert report.results == reference.results
        assert report.retries == 1
        assert not report.degraded
        assert backend._alive == [True, False]

    def test_all_workers_dead_degrades_locally(
        self, tiny_trace, mem_library
    ):
        dead = WorkerServer()
        dead.stop()
        jobs = _jobs(mem_library)
        reference = simulate_batch(
            tiny_trace, jobs, workers=1, cache=NullCache()
        )
        backend = ShardedBackend([RemoteBackend(dead.address)])
        with backend:
            report = simulate_batch(
                tiny_trace, jobs, cache=NullCache(), backend=backend
            )
        assert report.results == reference.results
        assert report.degraded


class TestNetworkedCache:
    def test_cache_client_roundtrip(self, worker):
        client = CacheClient(worker.address)
        assert client.get("deadbeef") is None
        client.put("deadbeef", b"payload")
        assert client.get("deadbeef") == b"payload"
        client.close()

    def test_cache_client_peer_death_is_soft(self):
        dead = WorkerServer()
        dead.stop()
        client = CacheClient(dead.address, timeout=0.5)
        for _ in range(_NET_FAULT_LIMIT):
            assert client.get("digest") is None
        assert client.dead
        # Further traffic short-circuits without touching the socket.
        assert client.get("digest") is None
        client.put("digest", b"x")
        client.close()

    def test_worker_persists_blobs_to_cache_dir(self, tmp_path):
        first = WorkerServer(cache_dir=tmp_path)
        first.start()
        client = CacheClient(first.address)
        client.put("feedface", b"persisted")
        client.close()
        first.stop()
        second = WorkerServer(cache_dir=tmp_path)
        second.start()
        try:
            client = CacheClient(second.address)
            assert client.get("feedface") == b"persisted"
            client.close()
        finally:
            second.stop()

    def test_peers_share_results_through_worker(
        self, worker, tiny_trace, mem_library
    ):
        jobs = _jobs(mem_library)
        publisher = SimulationCache(url=worker.address)
        baseline = simulate_many(tiny_trace, jobs, cache=publisher)
        publisher.close()
        subscriber = SimulationCache(url=worker.address)
        report = simulate_many(tiny_trace, jobs, cache=subscriber)
        subscriber.close()
        assert report.results == baseline.results
        assert subscriber.net_hits == len(jobs)
        assert subscriber.misses == 0
        assert report.cache_net_hits == len(jobs)

    def test_dead_cache_peer_falls_back_to_simulation(
        self, tiny_trace, mem_library
    ):
        dead = WorkerServer()
        dead.stop()
        jobs = _jobs(mem_library)
        reference = simulate_many(tiny_trace, jobs, cache=NullCache())
        cache = SimulationCache(url=dead.address)
        cache._client.timeout = 0.5
        report = simulate_many(tiny_trace, jobs, cache=cache)
        cache.close()
        assert report.results == reference.results
        assert cache.net_hits == 0


class TestWorkerCli:
    def test_worker_subcommand_serves(self):
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        process = subprocess.Popen(
            [sys.executable, "-m", "repro", "worker", "--port", "0"],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=env,
        )
        try:
            line = process.stdout.readline().strip()
            assert line.startswith("listening on ")
            address = line.removeprefix("listening on ")
            backend = RemoteBackend(address, timeout=10.0)
            assert backend.ping()
            backend.close()
        finally:
            process.terminate()
            process.wait(timeout=10)
