"""End-to-end integration tests for the MemorEx pipeline."""

import pytest

from repro import run_memorex
from repro.apex.explorer import ApexConfig
from repro.conex.explorer import ConExConfig
from repro.core.design_point import summarize
from repro.core.memorex import MemorExConfig
from repro.workloads import get_workload

CONFIG = MemorExConfig(
    apex=ApexConfig(
        cache_options=(None, "cache_4k_16b_1w", "cache_16k_32b_2w"),
        stream_buffer_options=(None, "stream_buffer_4"),
        dma_options=(None, "si_dma_32"),
        map_indexed_to_sram=(False,),
        select_count=3,
    ),
    conex=ConExConfig(
        max_logical_connections=4,
        max_assignments_per_level=64,
        phase1_keep=4,
    ),
)


@pytest.fixture(scope="module")
def result():
    workload = get_workload("compress", scale=0.12, seed=7)
    return run_memorex(workload, config=CONFIG)


class TestPipeline:
    def test_stages_connected(self, result):
        assert result.workload_name == "compress"
        assert result.apex.trace_name == result.trace.name
        assert result.conex.trace_name == result.trace.name
        assert result.selected_points == result.conex.selected

    def test_selected_points_simulated(self, result):
        assert result.selected_points
        for point in result.selected_points:
            assert point.simulation is not None
            assert point.simulation.cost_gates > 0
            assert point.simulation.avg_latency >= 1.0
            assert point.simulation.avg_energy_nj > 0

    def test_exploration_yields_spread(self, result):
        """The paper's Table 1 shape: a wide latency range across the
        selected cost range."""
        points = result.selected_points
        costs = [p.simulation.cost_gates for p in points]
        latencies = [p.simulation.avg_latency for p in points]
        assert max(costs) > 2 * min(costs)
        assert max(latencies) > 1.5 * min(latencies)

    def test_energy_varies_less_than_latency(self, result):
        """Table 1: energy varies much less than performance among
        cache-based designs (connectivity power is small)."""
        cached = [
            p
            for p in result.selected_points
            if p.memory_eval.architecture.modules
        ]
        if len(cached) >= 2:
            energies = [p.simulation.avg_energy_nj for p in cached]
            latencies = [p.simulation.avg_latency for p in cached]
            energy_spread = max(energies) / min(energies)
            latency_spread = max(latencies) / min(latencies)
            assert energy_spread < latency_spread + 1.0

    def test_default_libraries_used(self):
        workload = get_workload("vocoder", scale=0.25, seed=3)
        small = MemorExConfig(
            apex=ApexConfig(
                cache_options=(None, "cache_4k_16b_1w"),
                stream_buffer_options=(None,),
                dma_options=(None,),
                map_indexed_to_sram=(False,),
                select_count=2,
            ),
            conex=ConExConfig(
                max_logical_connections=3,
                max_assignments_per_level=16,
                phase1_keep=3,
            ),
        )
        result = run_memorex(workload, config=small)
        assert result.selected_points


class TestSummaries:
    def test_summarize_fields(self, result):
        summary = summarize(result.selected_points[0])
        assert summary.cost_gates > 0
        assert summary.connections
        assert summary.objectives == (
            summary.cost_gates,
            summary.avg_latency,
            summary.avg_energy_nj,
        )

    def test_summarize_estimated_only_rejected(self, result):
        from repro.errors import ExplorationError

        with pytest.raises(ExplorationError):
            summarize(result.conex.estimated[0])
