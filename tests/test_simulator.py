"""Unit and behavioural tests for the trace-driven simulator."""

import pytest

from repro.apex.architectures import MemoryArchitecture
from repro.channels import Channel
from repro.connectivity.architecture import (
    ConnectivityArchitecture,
    build_cluster,
)
from repro.errors import SimulationError
from repro.sim import SamplingConfig, simulate
from repro.trace.events import TraceBuilder
from tests.conftest import simple_connectivity


def uncached_architecture(mem_library):
    dram = mem_library.get("dram").instantiate()
    return MemoryArchitecture("uncached", [], dram, {}, default_module="dram")


def sram_architecture(mem_library, structs):
    sram = mem_library.get("sram_16k").instantiate("sram")
    dram = mem_library.get("dram").instantiate()
    mapping = {s: "sram" for s in structs}
    return MemoryArchitecture("sram_only", [sram], dram, mapping, "dram")


class TestIdealConnectivity:
    def test_sram_arch_has_unit_latency_plus_issue(self, tiny_trace, mem_library):
        arch = sram_architecture(mem_library, ["stream", "table"])
        result = simulate(tiny_trace, arch)
        assert result.avg_latency == pytest.approx(1.0)
        assert result.miss_ratio == 0.0
        assert result.total_cycles == tiny_trace.duration

    def test_uncached_latency_near_dram(self, tiny_trace, mem_library):
        arch = uncached_architecture(mem_library)
        result = simulate(tiny_trace, arch)
        assert result.miss_ratio == 1.0
        # Mix of row misses (20) and page hits (8).
        assert 8 <= result.avg_latency <= 20

    def test_cache_reduces_latency(self, tiny_trace, mem_library, cache_architecture):
        uncached = simulate(tiny_trace, uncached_architecture(mem_library))
        cached = simulate(tiny_trace, cache_architecture)
        assert cached.avg_latency < uncached.avg_latency
        assert cached.miss_ratio < uncached.miss_ratio

    def test_result_counters(self, tiny_trace, cache_architecture):
        result = simulate(tiny_trace, cache_architecture)
        assert result.accesses == len(tiny_trace)
        assert result.sampled_accesses == len(tiny_trace)
        assert result.connectivity_name == "ideal"
        assert result.connectivity_cost_gates == 0.0
        assert result.memory_cost_gates == cache_architecture.area_gates
        cache_stats = result.modules["cache"]
        assert cache_stats.accesses == len(tiny_trace)
        assert cache_stats.hits + cache_stats.misses == cache_stats.accesses

    def test_channel_traffic_recorded(self, tiny_trace, cache_architecture):
        result = simulate(tiny_trace, cache_architecture)
        cpu = result.channels["cpu->cache"]
        assert cpu.transactions == len(tiny_trace)
        assert cpu.bytes_moved == tiny_trace.total_bytes
        backing = result.channels["cache->dram"]
        assert backing.transactions > 0  # refills happened


class TestRealConnectivity:
    def test_connectivity_adds_latency(
        self, tiny_trace, cache_architecture, conn_library
    ):
        ideal = simulate(tiny_trace, cache_architecture)
        conn = simple_connectivity(cache_architecture, tiny_trace, conn_library)
        real = simulate(tiny_trace, cache_architecture, conn)
        assert real.avg_latency > ideal.avg_latency
        assert real.connectivity_cost_gates > 0
        assert real.avg_energy_nj > ideal.avg_energy_nj

    def test_faster_cpu_bus_helps(
        self, tiny_trace, cache_architecture, conn_library
    ):
        apb = simple_connectivity(
            cache_architecture, tiny_trace, conn_library, cpu_preset="apb"
        )
        dedicated = simple_connectivity(
            cache_architecture, tiny_trace, conn_library, cpu_preset="dedicated"
        )
        slow = simulate(tiny_trace, cache_architecture, apb)
        fast = simulate(tiny_trace, cache_architecture, dedicated)
        assert fast.avg_latency < slow.avg_latency

    def test_missing_channel_rejected(
        self, tiny_trace, cache_architecture, conn_library
    ):
        # Only the CPU channel implemented; backing channel missing.
        conn = ConnectivityArchitecture(
            "partial",
            [
                build_cluster(
                    [Channel("cpu", "cache")],
                    "ahb",
                    conn_library.get("ahb").instantiate(),
                )
            ],
        )
        with pytest.raises(SimulationError):
            simulate(tiny_trace, cache_architecture, conn)

    def test_deterministic(self, tiny_trace, cache_architecture, conn_library):
        conn = simple_connectivity(cache_architecture, tiny_trace, conn_library)
        a = simulate(tiny_trace, cache_architecture, conn)
        b = simulate(tiny_trace, cache_architecture, conn)
        assert a.avg_latency == b.avg_latency
        assert a.avg_energy_nj == b.avg_energy_nj
        assert a.total_cycles == b.total_cycles

    def test_shared_bus_slower_than_private(
        self, compress_trace, compress_workload, mem_library, conn_library
    ):
        cache = mem_library.get("cache_8k_32b_2w").instantiate("cache")
        sb = mem_library.get("stream_buffer_4").instantiate("sb")
        dram = mem_library.get("dram").instantiate()
        arch = MemoryArchitecture(
            "two_mod", [cache, sb], dram, {"input_stream": "sb"}, "cache"
        )
        channels = arch.channels(compress_trace)
        on_chip = [c for c in channels if not c.crosses_chip]
        crossing = [c for c in channels if c.crosses_chip]
        off = build_cluster(
            crossing, "offchip_16", conn_library.get("offchip_16").instantiate()
        )
        shared = ConnectivityArchitecture(
            "shared",
            [
                build_cluster(
                    on_chip, "asb", conn_library.get("asb").instantiate()
                ),
                off,
            ],
        )
        off2 = build_cluster(
            crossing, "offchip_16", conn_library.get("offchip_16").instantiate()
        )
        private = ConnectivityArchitecture(
            "private",
            [
                build_cluster(
                    [c], "dedicated", conn_library.get("dedicated").instantiate(f"d{i}")
                )
                for i, c in enumerate(on_chip)
            ]
            + [off2],
        )
        shared_result = simulate(compress_trace, arch, shared)
        private_result = simulate(compress_trace, arch, private)
        assert private_result.avg_latency < shared_result.avg_latency
        # ... and dedicating everything costs more wire.
        assert (
            private_result.connectivity_cost_gates
            > shared_result.connectivity_cost_gates
        )

    def test_split_transaction_bus_beats_non_split_backing(
        self, compress_trace, mem_library, conn_library
    ):
        # Same topology, AHB (split) vs ASB (non-split) CPU-side bus.
        cache = mem_library.get("cache_4k_16b_1w").instantiate("cache")
        dram = mem_library.get("dram").instantiate()
        arch = MemoryArchitecture("c", [cache], dram, {}, "cache")
        ahb = simple_connectivity(arch, compress_trace, conn_library, "ahb")
        asb = simple_connectivity(arch, compress_trace, conn_library, "asb")
        ahb_result = simulate(compress_trace, arch, ahb)
        asb_result = simulate(compress_trace, arch, asb)
        # With a single blocking master the gap is small but AHB should
        # not be slower.
        assert ahb_result.avg_latency <= asb_result.avg_latency + 0.5


class TestEnergyAccounting:
    def test_uncached_energy_high(self, tiny_trace, mem_library, cache_architecture):
        uncached = simulate(tiny_trace, uncached_architecture(mem_library))
        cached = simulate(tiny_trace, cache_architecture)
        assert uncached.avg_energy_nj > cached.avg_energy_nj

    def test_total_energy_consistent(self, tiny_trace, cache_architecture):
        result = simulate(tiny_trace, cache_architecture)
        assert result.total_energy_nj == pytest.approx(
            result.avg_energy_nj * result.accesses
        )

    def test_off_chip_traffic_drives_energy(
        self, compress_trace, mem_library
    ):
        small = mem_library.get("cache_4k_16b_1w").instantiate("cache")
        big = mem_library.get("cache_32k_32b_2w").instantiate("cache")
        dram_a = mem_library.get("dram").instantiate()
        dram_b = mem_library.get("dram").instantiate()
        arch_small = MemoryArchitecture("s", [small], dram_a, {}, "cache")
        arch_big = MemoryArchitecture("b", [big], dram_b, {}, "cache")
        result_small = simulate(compress_trace, arch_small)
        result_big = simulate(compress_trace, arch_big)
        assert result_small.miss_ratio > result_big.miss_ratio


class TestSampling:
    def test_sampled_matches_full_approximately(
        self, compress_trace, cache_architecture, conn_library
    ):
        conn = simple_connectivity(
            cache_architecture, compress_trace, conn_library
        )
        full = simulate(compress_trace, cache_architecture, conn)
        sampled = simulate(
            compress_trace,
            cache_architecture,
            conn,
            SamplingConfig(on_window=400, off_ratio=9, warmup=50),
        )
        assert sampled.sampled_accesses < full.sampled_accesses
        assert sampled.avg_latency == pytest.approx(full.avg_latency, rel=0.35)
        assert sampled.avg_energy_nj == pytest.approx(full.avg_energy_nj, rel=0.35)

    def test_sampling_preserves_ranking(
        self, compress_trace, mem_library, conn_library
    ):
        """The paper's fidelity claim: sampling ranks designs correctly."""
        sampling = SamplingConfig(on_window=400, off_ratio=9, warmup=50)
        small = mem_library.get("cache_4k_16b_1w").instantiate("cache")
        big = mem_library.get("cache_32k_32b_2w").instantiate("cache")
        archs = [
            MemoryArchitecture("s", [small], mem_library.get("dram").instantiate(), {}, "cache"),
            MemoryArchitecture("b", [big], mem_library.get("dram").instantiate(), {}, "cache"),
        ]
        full_order = [
            simulate(compress_trace, a).avg_latency for a in archs
        ]
        sampled_order = [
            simulate(compress_trace, a, sampling=sampling).avg_latency
            for a in archs
        ]
        assert (full_order[0] > full_order[1]) == (
            sampled_order[0] > sampled_order[1]
        )
