"""Unit tests for the blocked matrix-multiply workload."""

import numpy as np
import pytest

from repro.workloads import MatmulWorkload
from repro.workloads.matmul import ELEMENT_BYTES, TILE


@pytest.fixture(scope="module")
def trace():
    return MatmulWorkload(scale=1.0, seed=3).trace()


def test_structures(trace):
    assert set(trace.structs) == {
        "matrix_a",
        "matrix_b",
        "matrix_c",
        "misc",
    }


def test_c_is_read_modify_write(trace):
    mask = trace.struct_mask("matrix_c")
    kinds = trace.kinds[mask]
    reads = int((kinds == 0).sum())
    writes = int((kinds == 1).sum())
    assert reads == writes  # one read per write


def test_a_b_are_read_only(trace):
    for struct in ("matrix_a", "matrix_b"):
        mask = trace.struct_mask(struct)
        assert (trace.kinds[mask] == 0).all()


def test_b_is_revisited_across_panels(trace):
    mask = trace.struct_mask("matrix_b")
    addresses = trace.addresses[mask]
    # Blocked schedule revisits B panels once per A row-panel.
    assert len(np.unique(addresses)) < len(addresses)


def test_addresses_stay_in_matrices(trace):
    side = 32  # base_side at scale 1.0
    matrix_bytes = side * side * ELEMENT_BYTES
    for struct in ("matrix_a", "matrix_b", "matrix_c"):
        mask = trace.struct_mask(struct)
        addresses = trace.addresses[mask]
        assert addresses.max() - addresses.min() < matrix_bytes


def test_scale_grows_matrix():
    small = MatmulWorkload(scale=0.5, seed=1).trace()
    large = MatmulWorkload(scale=2.0, seed=1).trace()
    assert len(large) > 2 * len(small)


def test_determinism():
    a = MatmulWorkload(scale=0.5, seed=9).trace()
    b = MatmulWorkload(scale=0.5, seed=9).trace()
    assert (a.addresses == b.addresses).all()


def test_side_is_tile_multiple():
    trace = MatmulWorkload(scale=0.7, seed=1).trace()
    mask = trace.struct_mask("matrix_a")
    addresses = trace.addresses[mask]
    span = int(addresses.max() - addresses.min()) + ELEMENT_BYTES
    side_squared = span / ELEMENT_BYTES
    side = int(np.sqrt(side_squared))
    assert side % TILE == 0 or side_squared < (side + 1) ** 2
