"""Tests for the cross-workload comparison."""

import pytest

from repro.apex.explorer import ApexConfig
from repro.conex.explorer import ConExConfig
from repro.core.memorex import MemorExConfig, run_memorex
from repro.core.multi import compare_workloads, format_comparison
from repro.errors import ExplorationError
from repro.workloads import get_workload

SMALL = MemorExConfig(
    apex=ApexConfig(
        cache_options=(None, "cache_4k_16b_1w"),
        stream_buffer_options=(None, "stream_buffer_4"),
        dma_options=(None,),
        map_indexed_to_sram=(False,),
        select_count=2,
    ),
    conex=ConExConfig(
        max_logical_connections=3,
        max_assignments_per_level=16,
        phase1_keep=3,
    ),
)


@pytest.fixture(scope="module")
def results():
    return [
        run_memorex(get_workload("vocoder", scale=0.3, seed=1), config=SMALL),
        run_memorex(get_workload("dct", scale=0.5, seed=1), config=SMALL),
    ]


class TestCompareWorkloads:
    def test_all_workloads_present(self, results):
        comparison = compare_workloads(results)
        assert set(comparison.knees) == {"vocoder", "dct"}
        assert set(comparison.fronts) == {"vocoder", "dct"}

    def test_knee_is_on_its_front(self, results):
        comparison = compare_workloads(results)
        for workload, knee in comparison.knees.items():
            labels = [s.label for s in comparison.fronts[workload]]
            assert knee.label in labels

    def test_preset_tally_counts_clusters(self, results):
        comparison = compare_workloads(results)
        total_clusters = sum(
            len(p.connectivity.clusters)
            for result in results
            for p in result.selected_points
        )
        assert sum(comparison.preset_tally.values()) == total_clusters

    def test_favoured_presets_ordered(self, results):
        comparison = compare_workloads(results)
        favoured = comparison.favoured_presets(top=5)
        counts = [count for _, count in favoured]
        assert counts == sorted(counts, reverse=True)

    def test_empty_rejected(self):
        with pytest.raises(ExplorationError):
            compare_workloads([])

    def test_duplicate_workload_rejected(self, results):
        with pytest.raises(ExplorationError):
            compare_workloads([results[0], results[0]])


class TestFormatComparison:
    def test_report_contents(self, results):
        text = format_comparison(compare_workloads(results))
        assert "vocoder" in text and "dct" in text
        assert "knee pick" in text
        assert "most-used connectivity presets" in text
