"""Unit tests for the wire length / area / energy models."""

import pytest

from repro.connectivity.wire import (
    WireModel,
    wire_area_gates,
    wire_energy_nj_per_byte,
    wire_length_mm,
)
from repro.errors import ConfigurationError


class TestWireLength:
    def test_grows_with_attached_area(self):
        assert wire_length_mm(1e6, 2) > wire_length_mm(1e4, 2)

    def test_grows_with_fanout(self):
        assert wire_length_mm(1e5, 6) > wire_length_mm(1e5, 2)

    def test_point_to_point_longer_at_high_fanout(self):
        shared = wire_length_mm(1e5, 4, point_to_point=False)
        spokes = wire_length_mm(1e5, 4, point_to_point=True)
        assert spokes > shared

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            wire_length_mm(-1.0, 2)
        with pytest.raises(ConfigurationError):
            wire_length_mm(1e5, 0)

    def test_zero_area_still_positive(self):
        assert wire_length_mm(0.0, 1) > 0.0


class TestWireArea:
    def test_proportional_to_lanes_and_length(self):
        assert wire_area_gates(2.0, 32) > wire_area_gates(1.0, 32)
        assert wire_area_gates(1.0, 64) > wire_area_gates(1.0, 32)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            wire_area_gates(-1.0, 32)
        with pytest.raises(ConfigurationError):
            wire_area_gates(1.0, 0)


class TestWireEnergy:
    def test_on_chip_grows_with_length(self):
        assert wire_energy_nj_per_byte(4.0) > wire_energy_nj_per_byte(1.0)

    def test_off_chip_pad_dominates(self):
        on = wire_energy_nj_per_byte(2.0, off_chip=False)
        off = wire_energy_nj_per_byte(2.0, off_chip=True)
        assert off > 10 * on

    def test_zero_length_on_chip_is_free(self):
        assert wire_energy_nj_per_byte(0.0) == 0.0

    def test_negative_length_rejected(self):
        with pytest.raises(ConfigurationError):
            wire_energy_nj_per_byte(-1.0)


class TestWireModelBundle:
    def test_for_connection(self):
        model = WireModel.for_connection(
            attached_area_gates=5e5,
            fanout=3,
            data_lanes=32,
            point_to_point=False,
            off_chip=False,
        )
        assert model.length_mm > 0
        assert model.area_gates > 0
        assert model.energy_nj_per_byte > 0

    def test_off_chip_energy_flag_propagates(self):
        on = WireModel.for_connection(1e5, 2, 16, off_chip=False)
        off = WireModel.for_connection(1e5, 2, 16, off_chip=True)
        assert off.energy_nj_per_byte > on.energy_nj_per_byte
