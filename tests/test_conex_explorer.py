"""Integration tests for the ConEx explorer and scenarios."""

import pytest

from repro.apex.explorer import ApexConfig, explore_memory_architectures
from repro.conex.explorer import ConExConfig, explore_connectivity
from repro.conex.scenarios import (
    cost_constrained_selection,
    performance_constrained_selection,
    power_constrained_selection,
)
from repro.errors import ExplorationError
from repro.util.pareto import is_pareto_point

APEX_CONFIG = ApexConfig(
    cache_options=(None, "cache_4k_16b_1w", "cache_16k_32b_2w"),
    stream_buffer_options=(None, "stream_buffer_4"),
    dma_options=(None, "si_dma_32"),
    map_indexed_to_sram=(False,),
    select_count=3,
)

CONEX_CONFIG = ConExConfig(
    max_logical_connections=4,
    max_assignments_per_level=128,
    phase1_keep=5,
)


@pytest.fixture(scope="module")
def exploration(mem_library_module, conn_library_module):
    from repro.workloads import get_workload

    workload = get_workload("compress", scale=0.12, seed=7)
    trace = workload.trace()
    apex = explore_memory_architectures(
        trace, mem_library_module, APEX_CONFIG, hints=workload.pattern_hints
    )
    conex = explore_connectivity(
        trace, apex.selected, conn_library_module, CONEX_CONFIG
    )
    return trace, apex, conex


@pytest.fixture(scope="module")
def mem_library_module():
    from repro.memory.library import default_memory_library

    return default_memory_library()


@pytest.fixture(scope="module")
def conn_library_module():
    from repro.connectivity.library import default_connectivity_library

    return default_connectivity_library()


class TestConExResult:
    def test_phase1_estimates_produced(self, exploration):
        _, apex, conex = exploration
        assert len(conex.estimated) > len(conex.simulated)
        memory_names = {p.memory_name for p in conex.estimated}
        assert memory_names == {
            e.architecture.name for e in apex.selected
        }

    def test_phase2_simulated_bounded(self, exploration):
        _, apex, conex = exploration
        assert len(conex.simulated) <= (
            len(apex.selected) * CONEX_CONFIG.phase1_keep
        )
        assert all(p.simulation is not None for p in conex.simulated)

    def test_selected_is_pareto_of_simulated(self, exploration):
        _, _, conex = exploration
        vectors = [p.simulated_objectives for p in conex.simulated]
        for point in conex.selected:
            assert is_pareto_point(point.simulated_objectives, vectors)

    def test_brg_per_memory_architecture(self, exploration):
        _, apex, conex = exploration
        assert set(conex.brgs) == {e.architecture.name for e in apex.selected}

    def test_cluster_counts_respect_guard(self, exploration):
        _, _, conex = exploration
        for point in conex.estimated:
            assert (
                len(point.connectivity.clusters)
                <= CONEX_CONFIG.max_logical_connections
            )

    def test_timing_recorded(self, exploration):
        _, _, conex = exploration
        assert conex.phase1_seconds > 0
        assert conex.phase2_seconds > 0
        assert conex.total_seconds == pytest.approx(
            conex.phase1_seconds + conex.phase2_seconds
        )

    def test_exploration_improves_on_worst(self, exploration):
        """The headline claim: connectivity choice matters a lot."""
        _, _, conex = exploration
        latencies = [p.simulation.avg_latency for p in conex.simulated]
        assert max(latencies) > 1.3 * min(latencies)

    def test_empty_memory_set_rejected(self, exploration, conn_library_module):
        trace, _, _ = exploration
        with pytest.raises(ExplorationError):
            explore_connectivity(trace, [], conn_library_module)

    def test_phase1_keep_one(self, exploration, conn_library_module):
        """Regression: a single carry slot used to divide by zero in
        the latency-axis thinning."""
        trace, apex, _ = exploration
        config = ConExConfig(
            max_logical_connections=4,
            max_assignments_per_level=128,
            phase1_keep=1,
        )
        conex = explore_connectivity(
            trace, apex.selected, conn_library_module, config
        )
        # One design carried per memory architecture: the lowest-latency
        # point of each local front.
        assert 1 <= len(conex.simulated) <= len(apex.selected)
        for point in conex.simulated:
            local = [
                p for p in conex.estimated
                if p.memory_name == point.memory_name
            ]
            assert point.estimate.avg_latency == min(
                p.estimate.avg_latency for p in local
            )


class TestScenarios:
    def test_power_constrained(self, exploration):
        _, _, conex = exploration
        energies = sorted(p.simulation.avg_energy_nj for p in conex.simulated)
        budget = energies[len(energies) // 2]
        picks = power_constrained_selection(conex.simulated, budget)
        assert picks
        assert all(p.simulation.avg_energy_nj <= budget for p in picks)
        # 2D pareto in cost/latency: sorted by cost, latency decreases.
        ordered = sorted(picks, key=lambda p: p.simulation.cost_gates)
        latencies = [p.simulation.avg_latency for p in ordered]
        assert latencies == sorted(latencies, reverse=True)

    def test_cost_constrained(self, exploration):
        _, _, conex = exploration
        costs = sorted(p.simulation.cost_gates for p in conex.simulated)
        budget = costs[len(costs) // 2]
        picks = cost_constrained_selection(conex.simulated, budget)
        assert picks
        assert all(p.simulation.cost_gates <= budget for p in picks)

    def test_performance_constrained(self, exploration):
        _, _, conex = exploration
        latencies = sorted(p.simulation.avg_latency for p in conex.simulated)
        budget = latencies[-1]
        picks = performance_constrained_selection(conex.simulated, budget)
        assert picks

    def test_scenarios_pick_different_designs(self, exploration):
        """The paper: the three goals are incompatible; scenario
        selections differ."""
        _, _, conex = exploration
        energies = sorted(p.simulation.avg_energy_nj for p in conex.simulated)
        costs = sorted(p.simulation.cost_gates for p in conex.simulated)
        power_picks = {
            p.label()
            for p in power_constrained_selection(conex.simulated, energies[-1])
        }
        cost_picks = {
            p.label()
            for p in cost_constrained_selection(conex.simulated, costs[-1])
        }
        assert power_picks != cost_picks

    def test_unconstrained_budget_keeps_all_feasible(self, exploration):
        _, _, conex = exploration
        picks = power_constrained_selection(conex.simulated, float("inf"))
        assert picks

    def test_impossible_budget_gives_empty(self, exploration):
        _, _, conex = exploration
        assert power_constrained_selection(conex.simulated, 0.0) == []

    def test_unsimulated_points_rejected(self, exploration):
        _, _, conex = exploration
        estimated_only = conex.estimated[:3]
        with pytest.raises(ExplorationError):
            power_constrained_selection(estimated_only, 100.0)

    def test_empty_points_rejected(self):
        with pytest.raises(ExplorationError):
            cost_constrained_selection([], 1.0)
