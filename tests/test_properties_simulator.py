"""Property-based tests of whole-simulator invariants.

Hypothesis generates small random traces and architecture shapes; the
simulator must uphold its invariants on all of them: latencies at least
one cycle, conserved traffic, monotone time, determinism.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apex.architectures import MemoryArchitecture
from repro.connectivity.library import default_connectivity_library
from repro.memory.cache import Cache
from repro.memory.dma import SelfIndirectDma
from repro.memory.library import default_memory_library
from repro.memory.sram import Sram
from repro.memory.stream_buffer import StreamBuffer
from repro.sim.simulator import simulate
from repro.trace.events import TraceBuilder
from tests.conftest import simple_connectivity

MEMORY_LIBRARY = default_memory_library()
CONNECTIVITY_LIBRARY = default_connectivity_library()

#: Structures and their address regions (small, disjoint).
REGIONS = {
    "alpha": (0x1_0000, 0x2000),
    "beta": (0x8_0000, 0x800),
    "gamma": (0x10_0000, 0x400),
}


@st.composite
def random_trace(draw):
    events = draw(
        st.lists(
            st.tuples(
                st.sampled_from(sorted(REGIONS)),
                st.floats(min_value=0.0, max_value=1.0),
                st.booleans(),
                st.integers(min_value=0, max_value=6),
            ),
            min_size=1,
            max_size=120,
        )
    )
    builder = TraceBuilder("prop")
    # Touch every region once so any architecture mapping is valid.
    for struct in sorted(REGIONS):
        base, _ = REGIONS[struct]
        builder.read(base, 4, struct)
    for struct, position, write, gap in events:
        base, span = REGIONS[struct]
        address = base + int(position * (span - 8)) // 4 * 4
        builder.compute(gap)
        if write:
            builder.write(address, 4, struct)
        else:
            builder.read(address, 4, struct)
    return builder.build()


@st.composite
def random_architecture(draw):
    modules = []
    mapping = {}
    kind = draw(st.sampled_from(["cache", "sram", "dma", "stream", "none"]))
    if kind == "cache":
        modules.append(Cache("cache", 2048, 32, 2))
        default = "cache"
    elif kind == "sram":
        # 16 KiB covers every region's footprint.
        modules.append(Sram("sram", 16384))
        mapping = {s: "sram" for s in REGIONS}
        default = "dram"
    elif kind == "dma":
        modules.append(SelfIndirectDma("dma", entries=16))
        mapping = {"alpha": "dma"}
        modules.append(Cache("cache", 1024, 16, 1))
        default = "cache"
    elif kind == "stream":
        modules.append(StreamBuffer("sb", depth=4))
        mapping = {"beta": "sb"}
        default = "dram"
    else:
        default = "dram"
    dram = MEMORY_LIBRARY.get("dram").instantiate()
    return MemoryArchitecture("prop_arch", modules, dram, mapping, default)


class TestSimulatorInvariants:
    @settings(max_examples=40, deadline=None)
    @given(random_trace(), random_architecture())
    def test_core_invariants(self, trace, architecture):
        result = simulate(trace, architecture)
        assert result.accesses == len(trace)
        assert result.avg_latency >= 1.0
        assert result.total_cycles >= trace.duration
        assert result.avg_energy_nj > 0.0
        assert 0.0 <= result.miss_ratio <= 1.0
        # Conservation: CPU-side channels carry exactly the trace bytes.
        cpu_bytes = sum(
            t.bytes_moved
            for t in result.channels.values()
            if t.channel_name.startswith("cpu->")
        )
        assert cpu_bytes == trace.total_bytes

    @settings(max_examples=20, deadline=None)
    @given(random_trace(), random_architecture())
    def test_real_connectivity_never_faster_than_ideal(
        self, trace, architecture
    ):
        ideal = simulate(trace, architecture)
        connectivity = simple_connectivity(
            architecture, trace, CONNECTIVITY_LIBRARY
        )
        real = simulate(trace, architecture, connectivity)
        assert real.avg_latency >= ideal.avg_latency
        assert real.avg_energy_nj >= ideal.avg_energy_nj
        assert real.cost_gates >= ideal.cost_gates

    @settings(max_examples=20, deadline=None)
    @given(random_trace(), random_architecture())
    def test_determinism(self, trace, architecture):
        first = simulate(trace, architecture)
        second = simulate(trace, architecture)
        assert first.avg_latency == second.avg_latency
        assert first.total_cycles == second.total_cycles
        assert first.avg_energy_nj == second.avg_energy_nj

    @settings(max_examples=20, deadline=None)
    @given(random_trace())
    def test_hit_counters_sum(self, trace):
        cache = Cache("cache", 2048, 32, 2)
        dram = MEMORY_LIBRARY.get("dram").instantiate()
        architecture = MemoryArchitecture("c", [cache], dram, {}, "cache")
        result = simulate(trace, architecture)
        stats = result.modules["cache"]
        assert stats.hits + stats.misses == len(trace)
        assert stats.miss_ratio == result.miss_ratio
