"""Unit tests for the connectivity components' timing and models."""

import pytest

from repro.connectivity.amba import AhbBus, ApbBus, AsbBus
from repro.connectivity.dedicated import DedicatedConnection
from repro.connectivity.mux import MuxConnection
from repro.connectivity.offchip import OffChipBus
from repro.errors import ConfigurationError


class TestTransferTiming:
    def test_beats(self):
        ahb = AhbBus()
        assert ahb.beats(1) == 1
        assert ahb.beats(4) == 1
        assert ahb.beats(5) == 2
        assert ahb.beats(32) == 8

    def test_zero_size_rejected(self):
        with pytest.raises(ConfigurationError):
            AhbBus().beats(0)

    def test_pipelined_occupancy_below_latency(self):
        ahb = AhbBus()
        timing = ahb.timing(32)
        assert timing.occupancy < timing.latency
        assert timing.latency == 2 + 8

    def test_unpipelined_occupancy_equals_latency(self):
        asb = AsbBus()
        timing = asb.timing(32)
        assert timing.occupancy == timing.latency

    def test_apb_two_cycle_beats(self):
        apb = ApbBus()
        assert apb.timing(4).latency == 1 + 2
        assert apb.timing(8).latency == 1 + 4

    def test_dedicated_zero_setup(self):
        dedicated = DedicatedConnection()
        assert dedicated.timing(4).latency == 1

    def test_wide_ahb_halves_beats(self):
        narrow = AhbBus("a", width_bytes=4).timing(32)
        wide = AhbBus("w", width_bytes=8).timing(32)
        assert wide.latency < narrow.latency

    def test_offchip_slow_beats(self):
        off = OffChipBus(width_bytes=2)
        assert off.timing(32).latency == 3 + 16 * 2


class TestProtocolFlags:
    def test_ahb_split_and_pipelined(self):
        ahb = AhbBus()
        assert ahb.pipelined and ahb.split_transactions

    def test_asb_apb_not_split(self):
        assert not AsbBus().split_transactions
        assert not ApbBus().split_transactions
        assert not ApbBus().pipelined

    def test_mux_point_to_point(self):
        assert MuxConnection().point_to_point
        assert MuxConnection().max_ports == 4

    def test_dedicated_two_ports(self):
        assert DedicatedConnection().max_ports == 2

    def test_offchip_flag(self):
        assert not OffChipBus().on_chip
        assert AhbBus().on_chip


class TestReservationTables:
    def test_unpipelined_table_single_resource(self):
        asb = AsbBus()
        table = asb.reservation_table(8)
        assert table.resources == ("asb.bus",)
        assert table.length == asb.timing(8).latency
        assert table.min_initiation_interval() == table.length

    def test_pipelined_table_overlaps(self):
        ahb = AhbBus()
        table = ahb.reservation_table(32)
        assert table.min_initiation_interval() < table.length

    def test_dedicated_table_ii_matches_beats(self):
        dedicated = DedicatedConnection()
        table = dedicated.reservation_table(16)
        assert table.min_initiation_interval() == 4


class TestCostEnergyModels:
    def test_cost_grows_with_ports(self):
        ahb = AhbBus()
        assert ahb.cost_gates(8, 1e5) > ahb.cost_gates(2, 1e5)

    def test_cost_grows_with_attached_area(self):
        ahb = AhbBus()
        assert ahb.cost_gates(4, 1e6) > ahb.cost_gates(4, 1e4)

    def test_port_limit_enforced(self):
        dedicated = DedicatedConnection()
        with pytest.raises(ConfigurationError):
            dedicated.cost_gates(3, 1e5)

    def test_mux_wires_cost_more_than_bus_trunk(self):
        # Point-to-point spokes vs a shared trunk at equal fanout.
        mux = MuxConnection()
        asb = AsbBus()
        assert (
            mux.wire_model(4, 5e5).length_mm > asb.wire_model(4, 5e5).length_mm
        )

    def test_ahb_controller_pricier_than_apb(self):
        ahb, apb = AhbBus(), ApbBus()
        # Compare controllers only (same wire situation).
        from repro.memory.area import controller_area_gates

        assert controller_area_gates(4, ahb.protocol_complexity) > (
            controller_area_gates(4, apb.protocol_complexity)
        )

    def test_offchip_energy_dominated_by_pads(self):
        off = OffChipBus()
        on = AsbBus()
        assert off.energy_nj_per_byte(2, 1e5) > 5 * on.energy_nj_per_byte(2, 1e5)

    def test_describe_mentions_features(self):
        assert "split" in AhbBus().describe()
        assert "off-chip" in OffChipBus().describe()


class TestValidation:
    def test_bad_width(self):
        with pytest.raises(ConfigurationError):
            AhbBus(width_bytes=0)

    def test_timing_positive(self):
        for component in (AhbBus(), AsbBus(), ApbBus(), MuxConnection(),
                          DedicatedConnection(), OffChipBus()):
            timing = component.timing(4)
            assert timing.latency >= 1
            assert timing.occupancy >= 1
