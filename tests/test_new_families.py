"""Equivalence and integration tests for the new component families.

PR 10 adds multi-channel DRAM, multi-port SRAM, the 2D mesh, and the
SpMV workload. The same exactness contract that protects the original
families applies here: the columnar kernel, the segmented engine, and
the cross-candidate batch evaluator must all be bit-identical to the
scalar reference on architectures using the new modules, and ConEx
must enumerate the mesh (with port-aware feasibility) like any other
library preset.
"""

from __future__ import annotations

import functools
import itertools

import pytest

from repro.channels import CPU, DRAM, Channel
from repro.conex.allocation import compatible_presets
from repro.conex.clustering import LogicalConnection
from repro.connectivity.architecture import (
    ConnectivityArchitecture,
    build_cluster,
    cluster_ports,
)
from repro.connectivity.library import default_connectivity_library
from repro.connectivity.mesh import MeshConnection
from repro.exec import NullCache, SimulationJob, simulate_batch
from repro.memory.library import default_memory_library, mixed_architecture
from repro.sim.sampling import SamplingConfig
from repro.sim.simulator import simulate
from repro.workloads import get_workload

MEM_LIBRARY = default_memory_library()
CONN_LIBRARY = default_connectivity_library()

SAMPLING = SamplingConfig(on_window=256, off_ratio=9, warmup=32)

#: Every multi-channel flavour plus the banked baseline it generalizes.
DRAM_PRESETS = ("dram_4bank", "mcdram_2ch", "mcdram_4ch", "mcdram_2ch_block")


@functools.lru_cache(maxsize=None)
def _trace(workload: str):
    scale = 0.4 if workload == "spmv" else 0.12
    return get_workload(workload, scale=scale, seed=7).trace()


@functools.lru_cache(maxsize=None)
def _architecture(workload: str, dram_preset: str):
    return mixed_architecture(
        _trace(workload),
        MEM_LIBRARY,
        sram_preset="mp_sram_8k_2p",
        dram_preset=dram_preset,
    )


def _connectivity(memory, trace, mode: str):
    if mode == "ideal":
        return None
    channels = memory.channels(trace)
    on_chip = [c for c in channels if not c.crosses_chip]
    crossing = [c for c in channels if c.crosses_chip]
    clusters = []
    if on_chip:
        # mesh_4x4 has 16 router ports, enough for the multi-port SRAM.
        preset = CONN_LIBRARY.get("mesh_4x4")
        clusters.append(build_cluster(on_chip, "mesh_4x4", preset.instantiate()))
    if crossing:
        preset = CONN_LIBRARY.get("offchip_16")
        clusters.append(
            build_cluster(crossing, "offchip_16", preset.instantiate())
        )
    return ConnectivityArchitecture(mode, clusters)


GRID = list(
    itertools.product(
        DRAM_PRESETS, ("unsampled", "sampled"), ("ideal", "mesh")
    )
)


@pytest.mark.parametrize("dram_preset,sampling_mode,conn_mode", GRID)
def test_kernel_matches_reference_on_new_families(
    dram_preset, sampling_mode, conn_mode
):
    trace = _trace("spmv")
    memory = _architecture("spmv", dram_preset)
    connectivity = _connectivity(memory, trace, conn_mode)
    sampling = SAMPLING if sampling_mode == "sampled" else None
    posted = sampling_mode == "sampled"  # cross posted writes in too
    reference = simulate(
        trace, memory, connectivity, sampling, posted, reference=True
    )
    kernel = simulate(
        trace, memory, connectivity, sampling, posted, reference=False
    )
    assert kernel == reference


@pytest.mark.parametrize("workload", ["spmv", "compress"])
def test_simulate_batch_matches_independent_runs(workload):
    trace = _trace(workload)
    jobs = [
        SimulationJob(
            memory=_architecture(workload, dram_preset),
            connectivity=_connectivity(
                _architecture(workload, dram_preset), trace, mode
            ),
            sampling=SAMPLING if mode == "mesh" else None,
        )
        for dram_preset in DRAM_PRESETS
        for mode in ("ideal", "mesh")
    ]
    report = simulate_batch(trace, jobs, workers=1, cache=NullCache())
    assert len(report.results) == len(jobs)
    for job, result in zip(jobs, report.results):
        independent = simulate(
            trace, job.memory, job.connectivity, job.sampling, False
        )
        assert result == independent
        reference = simulate(
            trace,
            job.memory,
            job.connectivity,
            job.sampling,
            False,
            reference=True,
        )
        assert result == reference


def test_spmv_latency_improves_with_channels():
    """More DRAM channels must not slow SpMV down (and 4ch must win)."""
    trace = _trace("spmv")
    cycles = [
        simulate(
            trace, _architecture("spmv", preset), None, None, True
        ).total_cycles
        for preset in ("dram", "mcdram_2ch", "mcdram_4ch")
    ]
    assert cycles[0] >= cycles[1] >= cycles[2]
    assert cycles[2] < cycles[0]


def test_mesh_presets_enumerated_by_conex():
    channels = (
        Channel(CPU, "a"),
        Channel(CPU, "b"),
        Channel("a", "b"),
    )
    cluster = LogicalConnection(
        channels=channels, bandwidth=1.0, crosses_chip=False
    )
    names = {p.name for p in compatible_presets(cluster, CONN_LIBRARY)}
    assert {"mesh_2x2", "mesh_4x4"} <= names


def test_port_accounting_weights_multiport_modules():
    """A 4-port SRAM consumes four component ports, not one."""
    trace = _trace("spmv")
    memory = mixed_architecture(
        trace, MEM_LIBRARY, sram_preset="mp_sram_8k_4p"
    )
    # cpu + sram: one CPU port plus the SRAM's four access ports.
    assert cluster_ports((CPU, "sram"), memory) == 5
    assert cluster_ports((CPU, "sram"), None) == 2

    cluster = LogicalConnection(
        channels=(Channel(CPU, "sram"),), bandwidth=1.0, crosses_chip=False
    )
    unaware = {p.name for p in compatible_presets(cluster, CONN_LIBRARY)}
    aware = {
        p.name for p in compatible_presets(cluster, CONN_LIBRARY, memory)
    }
    assert aware < unaware  # port demand strictly shrinks the pool
    assert "dedicated" in unaware and "dedicated" not in aware
    assert "mesh_2x2" in unaware and "mesh_2x2" not in aware  # 4 < 5 ports
    assert "mesh_4x4" in aware  # 16 router ports still fit


def test_mesh_hop_model():
    mesh = MeshConnection("m", rows=2, cols=2)
    timing = mesh.timing(64)
    assert timing.latency >= 1
    assert mesh.max_ports == 4
    wider = MeshConnection("m", rows=4, cols=4)
    # Mean XY distance grows with the grid, so so does the latency.
    assert wider.timing(64).latency > timing.latency
