"""Unit tests for pareto-front mathematics."""

import pytest

from repro.errors import ExplorationError
from repro.util.pareto import (
    average_axis_distance,
    dominates,
    is_pareto_point,
    pareto_coverage,
    pareto_front,
    pareto_indices,
)


class TestDominates:
    def test_strictly_better_on_all_axes(self):
        assert dominates((1.0, 1.0), (2.0, 2.0))

    def test_better_on_one_equal_on_other(self):
        assert dominates((1.0, 2.0), (2.0, 2.0))

    def test_equal_points_do_not_dominate(self):
        assert not dominates((1.0, 2.0), (1.0, 2.0))

    def test_trade_off_points_do_not_dominate(self):
        assert not dominates((1.0, 3.0), (2.0, 2.0))
        assert not dominates((2.0, 2.0), (1.0, 3.0))

    def test_three_dimensional(self):
        assert dominates((1, 1, 1), (1, 1, 2))
        assert not dominates((1, 1, 2), (2, 2, 1))

    def test_dimension_mismatch_raises(self):
        with pytest.raises(ExplorationError):
            dominates((1.0,), (1.0, 2.0))


class TestParetoIndices:
    def test_single_point_is_pareto(self):
        assert pareto_indices([(3.0, 4.0)]) == [0]

    def test_dominated_point_excluded(self):
        assert pareto_indices([(1, 1), (2, 2)]) == [0]

    def test_trade_off_chain_all_kept(self):
        points = [(1, 4), (2, 3), (3, 2), (4, 1)]
        assert pareto_indices(points) == [0, 1, 2, 3]

    def test_duplicates_all_kept(self):
        assert pareto_indices([(1, 1), (1, 1)]) == [0, 1]

    def test_mixed(self):
        points = [(1, 5), (2, 2), (3, 3), (5, 1), (2, 6)]
        assert pareto_indices(points) == [0, 1, 3]

    def test_preserves_input_order(self):
        points = [(4, 1), (1, 4), (2, 2)]
        assert pareto_indices(points) == [0, 1, 2]


class TestParetoFront:
    def test_key_extraction(self):
        items = [{"c": 1, "p": 5}, {"c": 2, "p": 2}, {"c": 3, "p": 4}]
        front = pareto_front(items, key=lambda d: (d["c"], d["p"]))
        assert front == [items[0], items[1]]

    def test_empty_input_gives_empty_front(self):
        assert pareto_front([], key=lambda x: x) == []

    def test_three_objectives(self):
        items = [(1, 1, 9), (1, 9, 1), (9, 1, 1), (5, 5, 5), (9, 9, 9)]
        front = pareto_front(items, key=lambda v: v)
        assert (9, 9, 9) not in front
        assert len(front) == 4


class TestIsParetoPoint:
    def test_non_dominated(self):
        assert is_pareto_point((1, 5), [(2, 2), (3, 3)])

    def test_dominated(self):
        assert not is_pareto_point((4, 4), [(2, 2)])


class TestCoverage:
    def test_full_coverage(self):
        reference = [(1.0, 4.0), (2.0, 2.0)]
        result = pareto_coverage(reference, reference)
        assert result.coverage == 1.0
        assert result.coverage_percent == 100.0
        assert result.axis_distances == (0.0, 0.0)
        assert result.missed == ()

    def test_partial_coverage(self):
        reference = [(1.0, 4.0), (2.0, 2.0)]
        explored = [(1.0, 4.0), (2.1, 2.1)]
        result = pareto_coverage(reference, explored)
        assert result.coverage == 0.5
        assert len(result.missed) == 1
        # Closest to (2, 2) is (2.1, 2.1): 5% on each axis.
        assert result.axis_distances[0] == pytest.approx(5.0)
        assert result.axis_distances[1] == pytest.approx(5.0)

    def test_tolerance_counts_near_matches(self):
        reference = [(100.0, 10.0)]
        explored = [(100.5, 10.05)]
        loose = pareto_coverage(reference, explored, rel_tol=0.01)
        assert loose.coverage == 1.0
        strict = pareto_coverage(reference, explored, rel_tol=1e-9)
        assert strict.coverage == 0.0

    def test_empty_reference_raises(self):
        with pytest.raises(ExplorationError):
            pareto_coverage([], [(1.0, 1.0)])

    def test_three_axis_distances(self):
        reference = [(10.0, 10.0, 10.0)]
        explored = [(11.0, 12.0, 13.0)]
        result = pareto_coverage(reference, explored)
        assert result.axis_distances == pytest.approx((10.0, 20.0, 30.0))


class TestAverageAxisDistance:
    def test_empty_missed_gives_empty(self):
        assert average_axis_distance([], [(1.0, 1.0)]) == ()

    def test_empty_explored_raises(self):
        with pytest.raises(ExplorationError):
            average_axis_distance([(1.0, 1.0)], [])

    def test_picks_closest_candidate(self):
        missed = [(10.0, 10.0)]
        explored = [(100.0, 100.0), (10.5, 10.5)]
        distances = average_axis_distance(missed, explored)
        assert distances == pytest.approx((5.0, 5.0))

    def test_zero_reference_axis_uses_absolute(self):
        distances = average_axis_distance([(0.0, 10.0)], [(0.5, 10.0)])
        assert distances[0] == pytest.approx(50.0)
        assert distances[1] == 0.0
