"""Unit tests for reservation tables and transaction pipelines."""

import pytest

from repro.errors import ConfigurationError
from repro.timing.pipeline import TransactionPipeline
from repro.timing.reservation import ReservationTable


class TestReservationTable:
    def test_basic_properties(self):
        table = ReservationTable({"bus": [0, 1, 2]})
        assert table.resources == ("bus",)
        assert table.length == 3
        assert table.cycles("bus") == frozenset({0, 1, 2})
        assert table.cycles("other") == frozenset()

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            ReservationTable({})
        with pytest.raises(ConfigurationError):
            ReservationTable({"bus": []})

    def test_negative_cycle_rejected(self):
        with pytest.raises(ConfigurationError):
            ReservationTable({"bus": [-1, 0]})

    def test_conflict_detection(self):
        table = ReservationTable({"bus": [0, 1]})
        assert table.conflicts_with(table, 0)
        assert table.conflicts_with(table, 1)
        assert not table.conflicts_with(table, 2)

    def test_disjoint_resources_never_conflict(self):
        a = ReservationTable({"bus_a": [0, 1]})
        b = ReservationTable({"bus_b": [0, 1]})
        assert not a.conflicts_with(b, 0)

    def test_negative_offset_conflicts(self):
        a = ReservationTable({"bus": [0, 1, 2]})
        b = ReservationTable({"bus": [0]})
        assert a.conflicts_with(b, -0) or True  # offset 0 tested above
        assert b.conflicts_with(a, -2)

    def test_forbidden_latencies_full_occupancy(self):
        table = ReservationTable({"bus": [0, 1, 2, 3]})
        assert table.forbidden_latencies() == frozenset({1, 2, 3})
        assert table.min_initiation_interval() == 4

    def test_pipelined_table_small_ii(self):
        table = ReservationTable({"arb": [0], "data": [1, 2]})
        # At offset 1 arb(0+1) hits data? arb vs data are distinct;
        # data [1,2] vs data shifted [2,3] overlaps at 2 -> forbidden 1.
        assert 1 in table.forbidden_latencies()
        assert table.min_initiation_interval() == 2

    def test_perfectly_pipelined_ii_one(self):
        table = ReservationTable({"s0": [0], "s1": [1], "s2": [2]})
        assert table.min_initiation_interval() == 1

    def test_shifted(self):
        table = ReservationTable({"bus": [0, 1]})
        shifted = table.shifted(3)
        assert shifted.cycles("bus") == frozenset({3, 4})
        with pytest.raises(ConfigurationError):
            table.shifted(-1)

    def test_compose_disjoint(self):
        a = ReservationTable({"bus": [0, 1]})
        b = ReservationTable({"dram": [0, 1, 2]})
        composed = a.compose(b, offset=2)
        assert composed.cycles("bus") == frozenset({0, 1})
        assert composed.cycles("dram") == frozenset({2, 3, 4})
        assert composed.length == 5

    def test_compose_same_resource_overlap_rejected(self):
        a = ReservationTable({"bus": [0, 1]})
        with pytest.raises(ConfigurationError):
            a.compose(a, offset=1)

    def test_compose_same_resource_disjoint_allowed(self):
        a = ReservationTable({"bus": [0]})
        composed = a.compose(a, offset=5)
        assert composed.cycles("bus") == frozenset({0, 5})

    def test_utilization(self):
        table = ReservationTable({"bus": [0, 1], "pad": [3]})
        assert table.utilization("bus") == pytest.approx(0.5)
        assert table.utilization("missing") == 0.0

    def test_equality_and_hash(self):
        a = ReservationTable({"bus": [0, 1]})
        b = ReservationTable({"bus": [1, 0]})
        assert a == b
        assert hash(a) == hash(b)
        assert a != ReservationTable({"bus": [0]})


class TestTransactionPipeline:
    def test_latency_of_chained_stages(self):
        pipeline = TransactionPipeline()
        pipeline.append("bus", ReservationTable({"bus": [0, 1]}))
        pipeline.append("dram", ReservationTable({"dram": range(20)}))
        pipeline.append("ret", ReservationTable({"bus2": [0, 1]}))
        assert pipeline.latency == 2 + 20 + 2
        assert pipeline.stages == ("bus", "dram", "ret")

    def test_gap_between_stages(self):
        pipeline = TransactionPipeline()
        pipeline.append("a", ReservationTable({"x": [0]}))
        pipeline.append("b", ReservationTable({"y": [0]}), gap=3)
        assert pipeline.latency == 5

    def test_empty_pipeline_rejected(self):
        with pytest.raises(ConfigurationError):
            TransactionPipeline().composed()

    def test_negative_gap_rejected(self):
        pipeline = TransactionPipeline()
        with pytest.raises(ConfigurationError):
            pipeline.append("a", ReservationTable({"x": [0]}), gap=-1)

    def test_initiation_interval_bottleneck(self):
        pipeline = TransactionPipeline()
        pipeline.append("fast", ReservationTable({"bus": [0]}))
        pipeline.append("slow", ReservationTable({"dram": range(8)}))
        assert pipeline.initiation_interval == 8

    def test_loaded_latency_increases_with_load(self):
        pipeline = TransactionPipeline()
        pipeline.append("bus", ReservationTable({"bus": range(4)}))
        light = pipeline.loaded_latency(offered_interval=100.0)
        heavy = pipeline.loaded_latency(offered_interval=5.0)
        assert heavy > light
        assert light >= pipeline.latency

    def test_saturation_penalized_finite(self):
        pipeline = TransactionPipeline()
        pipeline.append("bus", ReservationTable({"bus": range(4)}))
        saturated = pipeline.loaded_latency(offered_interval=2.0)
        assert saturated > 50
        assert saturated < 1e6

    def test_bad_interval_rejected(self):
        pipeline = TransactionPipeline()
        pipeline.append("bus", ReservationTable({"bus": [0]}))
        with pytest.raises(ConfigurationError):
            pipeline.loaded_latency(0.0)
