"""Exact cycle-arithmetic tests of the simulator's timing semantics.

Tiny hand-built scenarios where the expected latency can be derived on
paper from the documented model (docs/architecture.md), pinning the
access walk's arithmetic: connection latency, module latency, DRAM
paging, non-split bus holds, and blocking-CPU lag accumulation.
"""

import pytest

from repro.apex.architectures import MemoryArchitecture
from repro.channels import Channel
from repro.connectivity.architecture import (
    ConnectivityArchitecture,
    build_cluster,
)
from repro.connectivity.dedicated import DedicatedConnection
from repro.connectivity.offchip import OffChipBus
from repro.memory.dram import Dram
from repro.memory.sram import Sram
from repro.sim import simulate
from repro.trace.events import TraceBuilder


def single_read_trace(size=4):
    builder = TraceBuilder("one")
    builder.read(0x1000, size, "x")
    return builder.build()


class TestSramPathArithmetic:
    def test_ideal_sram_read_is_one_cycle(self):
        trace = single_read_trace()
        arch = MemoryArchitecture(
            "a", [Sram("s", 4096)], Dram(), {"x": "s"}, "dram"
        )
        result = simulate(trace, arch)
        assert result.avg_latency == 1.0

    def test_dedicated_link_adds_exactly_its_latency(self):
        # Dedicated: base 0, 1 beat for 4 B -> conn latency 1.
        # Total: conn(1) + sram(1) = 2 cycles.
        trace = single_read_trace()
        arch = MemoryArchitecture(
            "a", [Sram("s", 4096)], Dram(), {"x": "s"}, "dram"
        )
        conn = ConnectivityArchitecture(
            "c",
            [
                build_cluster(
                    [Channel("cpu", "s")], "dedicated", DedicatedConnection()
                )
            ],
        )
        result = simulate(trace, arch, conn)
        assert result.avg_latency == 2.0

    def test_two_beat_transfer(self):
        # 8 B on a 4 B-wide dedicated link: 2 beats -> conn latency 2.
        trace = single_read_trace(size=8)
        arch = MemoryArchitecture(
            "a", [Sram("s", 4096)], Dram(), {"x": "s"}, "dram"
        )
        conn = ConnectivityArchitecture(
            "c",
            [
                build_cluster(
                    [Channel("cpu", "s")], "dedicated", DedicatedConnection()
                )
            ],
        )
        result = simulate(trace, arch, conn)
        assert result.avg_latency == 3.0  # 2 beats + sram 1


class TestUncachedPathArithmetic:
    def test_cold_uncached_read(self):
        # Off-chip bus (base 3, 2 cyc/beat, 16-bit): 4 B = 2 beats.
        # Walk: command done at +3; DRAM row miss 20; data 2*2=4.
        # Total = 3 + 20 + 4 = 27.
        trace = single_read_trace()
        arch = MemoryArchitecture("a", [], Dram(), {}, "dram")
        conn = ConnectivityArchitecture(
            "c",
            [
                build_cluster(
                    [Channel("cpu", "dram")], "offchip_16", OffChipBus()
                )
            ],
        )
        result = simulate(trace, arch, conn)
        assert result.avg_latency == 27.0

    def test_page_hit_second_read(self):
        builder = TraceBuilder("two")
        builder.read(0x1000, 4, "x")
        builder.read(0x1010, 4, "x")  # same 1 KiB row
        trace = builder.build()
        arch = MemoryArchitecture("a", [], Dram(), {}, "dram")
        conn = ConnectivityArchitecture(
            "c",
            [
                build_cluster(
                    [Channel("cpu", "dram")], "offchip_16", OffChipBus()
                )
            ],
        )
        result = simulate(trace, arch, conn)
        # First: 27 (row miss). Second: 3 + 8 + 4 = 15.
        assert result.avg_latency == pytest.approx((27 + 15) / 2)

    def test_lag_accumulates_into_total_cycles(self):
        builder = TraceBuilder("two")
        builder.read(0x1000, 4, "x")
        builder.read(0x9000, 4, "x")  # different row: 27 again
        trace = builder.build()
        arch = MemoryArchitecture("a", [], Dram(), {}, "dram")
        conn = ConnectivityArchitecture(
            "c",
            [
                build_cluster(
                    [Channel("cpu", "dram")], "offchip_16", OffChipBus()
                )
            ],
        )
        result = simulate(trace, arch, conn)
        # duration = 2; each access stalls 26 extra cycles.
        assert result.total_cycles == 2 + 26 + 26


class TestIdealDramArithmetic:
    def test_ideal_mode_charges_core_latency_only(self):
        trace = single_read_trace()
        arch = MemoryArchitecture("a", [], Dram(), {}, "dram")
        result = simulate(trace, arch)
        assert result.avg_latency == 20.0  # row miss, no connection

    def test_banked_dram_same_single_access(self):
        trace = single_read_trace()
        arch = MemoryArchitecture("a", [], Dram(banks=4), {}, "dram")
        result = simulate(trace, arch)
        assert result.avg_latency == 20.0
