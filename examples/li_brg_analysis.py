"""Trace and BRG analysis of the mini-Lisp interpreter workload.

Shows the analysis layers below the exploration: run the instrumented
interpreter, profile its bandwidth, build a memory architecture by
hand, derive its Bandwidth Requirement Graph, walk the clustering
hierarchy, and inspect the graph with networkx.

Run:
    python examples/li_brg_analysis.py
"""

import networkx as nx

from repro.apex.architectures import MemoryArchitecture
from repro.conex.brg import build_brg
from repro.conex.clustering import clustering_levels
from repro.memory import default_memory_library
from repro.sim import simulate
from repro.trace.profiler import profile_trace
from repro.workloads import get_workload


def main() -> None:
    workload = get_workload("li", scale=0.3, seed=1)
    trace = workload.trace()
    print(f"li trace: {len(trace)} accesses over {trace.duration} cycles")

    print("\nPer-structure bandwidth profile:")
    profile = profile_trace(trace)
    for stats in sorted(
        profile.by_struct.values(), key=lambda s: s.bandwidth, reverse=True
    ):
        print(
            f"  {stats.struct:14s} {stats.bandwidth:7.4f} B/cyc "
            f"({stats.accesses} accesses, "
            f"{100 * stats.write_fraction:.0f}% writes)"
        )

    # A hand-built architecture: DMA for the cons heap, SRAM for the
    # interpreter's hot tables, cache for the rest.
    library = default_memory_library()
    architecture = MemoryArchitecture(
        "li_custom",
        [
            library.get("cache_8k_32b_2w").instantiate("cache"),
            library.get("si_dma_64").instantiate("heap_dma"),
            library.get("sram_16k").instantiate("sram"),
        ],
        library.get("dram").instantiate(),
        {
            "cons_heap": "heap_dma",
            "symbol_table": "sram",
            "eval_stack": "sram",
        },
        default_module="cache",
    )
    result = simulate(trace, architecture)
    print(f"\nideal-connectivity simulation: {result.summary()}")

    brg = build_brg(architecture, result)
    print(f"\n{brg.describe()}")

    print("\nHierarchical clustering of the BRG arcs:")
    for level in clustering_levels(brg):
        groups = [
            "{" + ", ".join(c.name for c in cluster.channels) + "}"
            for cluster in level.clusters
        ]
        print(f"  {level.size} logical connections: {' '.join(groups)}")

    graph = brg.to_networkx()
    hottest = max(
        graph.edges(data=True), key=lambda e: e[2]["bandwidth"]
    )
    print(
        f"\nnetworkx view: {graph.number_of_nodes()} nodes, "
        f"{graph.number_of_edges()} arcs; hottest arc "
        f"{hottest[0]}->{hottest[1]} at {hottest[2]['bandwidth']:.4f} B/cyc"
    )
    print(f"CPU out-degree: {graph.out_degree('cpu')}")
    print(f"DRAM in-degree: {graph.in_degree('dram')}")
    paths = nx.single_source_shortest_path_length(graph, "cpu")
    print(f"max CPU-to-endpoint hops: {max(paths.values())}")


if __name__ == "__main__":
    main()
