"""One-factor sweeps: isolating the connectivity effect.

The paper's thesis is that the connection between CPU and memories has
"a comparably large impact" to the memory modules themselves. This
example isolates both factors with the sweep utilities: first cache
capacity at fixed connectivity, then the CPU-side connection at a fixed
memory architecture, and prints the two series side by side.

Run:
    python examples/bus_sweep.py
"""

from repro.apex.architectures import MemoryArchitecture
from repro.connectivity import default_connectivity_library
from repro.core.sweep import (
    series,
    sweep_cache_size,
    sweep_cpu_bus,
    sweep_offchip_bus,
)
from repro.memory import default_memory_library
from repro.workloads import get_workload


def print_series(title, pairs, unit):
    print(f"\n{title}")
    peak = max(v for _, v in pairs)
    for setting, value in pairs:
        bar = "#" * int(34 * value / peak)
        print(f"  {setting:16s} {value:8.2f} {unit}  {bar}")


def main() -> None:
    memory_library = default_memory_library()
    connectivity_library = default_connectivity_library()
    workload = get_workload("compress", scale=0.25, seed=1)
    trace = workload.trace()
    print(f"compress trace: {len(trace)} accesses")

    cache_points = sweep_cache_size(
        trace,
        memory_library,
        connectivity_library,
        [
            "cache_4k_16b_1w",
            "cache_8k_32b_1w",
            "cache_8k_32b_2w",
            "cache_16k_32b_2w",
            "cache_32k_32b_2w",
        ],
    )
    print_series(
        "Memory-module factor: cache size (AHB + 16-bit off-chip fixed)",
        series(cache_points, "avg_latency"),
        "cyc",
    )
    print_series(
        "  ... and what it costs",
        series(cache_points, "cost_gates"),
        "gates",
    )

    # A low-miss memory architecture: on-chip connectivity latency now
    # shows directly instead of hiding behind miss stalls.
    cache = memory_library.get("cache_32k_32b_2w").instantiate("cache")
    dram = memory_library.get("dram").instantiate()
    memory = MemoryArchitecture("fixed_32k", [cache], dram, {}, "cache")
    bus_points = sweep_cpu_bus(
        trace,
        memory,
        connectivity_library,
        ["apb", "asb", "ahb", "ahb_wide", "mux", "dedicated"],
    )
    print_series(
        "Connectivity factor 1: CPU-side connection (32 KiB cache fixed)",
        series(bus_points, "avg_latency"),
        "cyc",
    )

    offchip_points = sweep_offchip_bus(
        trace,
        memory,
        connectivity_library,
        ["offchip_16", "offchip_32"],
    )
    print_series(
        "Connectivity factor 2: off-chip bus (32 KiB cache, AHB fixed)",
        series(offchip_points, "avg_latency"),
        "cyc",
    )

    cache_latencies = [v for _, v in series(cache_points, "avg_latency")]
    bus_latencies = [v for _, v in series(bus_points, "avg_latency")]
    offchip_latencies = [v for _, v in series(offchip_points, "avg_latency")]
    cache_swing = max(cache_latencies) - min(cache_latencies)
    connectivity_swing = (
        max(bus_latencies)
        - min(bus_latencies)
        + max(offchip_latencies)
        - min(offchip_latencies)
    )
    print(
        f"\nlatency swing from cache sizing: {cache_swing:.2f} cyc; "
        f"combined swing from connectivity choices: "
        f"{connectivity_swing:.2f} cyc"
    )
    print(
        "-> connectivity choices move performance on the same order as "
        "module choices,\n   the paper's motivating observation — which "
        "is why ConEx explores them together."
    )


if __name__ == "__main__":
    main()
