"""Energy-aware design selection for the vocoder (paper Section 5 a-c).

Explores the vocoder workload, then applies the paper's three
constrained-selection scenarios:

* power-constrained  -> cost/performance pareto under an energy budget;
* cost-constrained   -> performance/power pareto under a gate budget;
* performance-constrained -> cost/power pareto under a latency budget.

Run:
    python examples/vocoder_power_tradeoff.py
"""

from repro import MemorExConfig, run_memorex
from repro.apex.explorer import ApexConfig
from repro.conex.explorer import ConExConfig
from repro.conex.scenarios import (
    cost_constrained_selection,
    performance_constrained_selection,
    power_constrained_selection,
)
from repro.workloads import get_workload


def show(title: str, picks) -> None:
    print(f"\n{title}")
    for point in sorted(picks, key=lambda p: p.simulation.cost_gates):
        simulation = point.simulation
        print(
            f"  {point.label():24s} {simulation.cost_gates:>9,.0f} gates  "
            f"{simulation.avg_latency:6.2f} cyc  "
            f"{simulation.avg_energy_nj:5.2f} nJ"
        )


def main() -> None:
    workload = get_workload("vocoder", scale=1.0, seed=1)
    result = run_memorex(
        workload,
        config=MemorExConfig(
            apex=ApexConfig(select_count=4),
            conex=ConExConfig(phase1_keep=8),
        ),
    )
    points = result.conex.simulated
    energies = sorted(p.simulation.avg_energy_nj for p in points)
    costs = sorted(p.simulation.cost_gates for p in points)
    latencies = sorted(p.simulation.avg_latency for p in points)

    energy_budget = energies[len(energies) // 2]
    cost_budget = costs[len(costs) // 2]
    latency_budget = latencies[len(latencies) // 2]

    print(f"vocoder exploration: {len(points)} simulated designs")
    show(
        f"(a) power-constrained (energy <= {energy_budget:.2f} nJ): "
        f"cost/performance pareto",
        power_constrained_selection(points, energy_budget),
    )
    show(
        f"(b) cost-constrained (cost <= {cost_budget:,.0f} gates): "
        f"performance/power pareto",
        cost_constrained_selection(points, cost_budget),
    )
    show(
        f"(c) performance-constrained (latency <= {latency_budget:.2f} cyc): "
        f"cost/power pareto",
        performance_constrained_selection(points, latency_budget),
    )


if __name__ == "__main__":
    main()
