"""Modelling a custom bus protocol's timing three ways.

The exploration consumes component timing through reservation tables.
This example builds the same hypothetical "fast packet bus" timing —
1-cycle arbitration, 2 data beats, pipelined — three equivalent ways
and cross-checks them:

1. by hand, as a raw :class:`ReservationTable`;
2. from an RTGEN-style stage description (`repro.timing.rtgen`);
3. from an interface timing diagram (`repro.timing.diagrams`),
   the abstraction path the paper's Related Work III describes.

It then chains the bus with a cache port and an off-chip transaction
into an end-to-end pipeline and prices it under load.

Run:
    python examples/custom_protocol_timing.py
"""

from repro.timing import (
    OperationDescription,
    ReservationTable,
    SignalWaveform,
    Stage,
    TimingDiagram,
    TransactionPipeline,
    diagram_to_table,
    generate_table,
)


def by_hand() -> ReservationTable:
    return ReservationTable(
        {"pkt.arb": [0], "pkt.data": [1, 2]}
    )


def by_rtgen() -> ReservationTable:
    operation = OperationDescription(
        "pkt",
        (
            Stage("arbitrate", ("pkt.arb",), duration=1),
            Stage("payload", ("pkt.data",), duration=2),
        ),
    )
    return generate_table(operation)


def by_diagram() -> ReservationTable:
    diagram = TimingDiagram(
        "pkt",
        (
            SignalWaveform("req", ((0, 1),)),
            SignalWaveform("gnt", ((0, 1),)),
            SignalWaveform("payload", ((1, 3),)),
            SignalWaveform("valid", ((1, 3),)),
        ),
        resource_classes={
            "pkt.arb": ("req", "gnt"),
            "pkt.data": ("payload", "valid"),
        },
    )
    return diagram_to_table(diagram)


def main() -> None:
    tables = {
        "hand-written": by_hand(),
        "RTGEN description": by_rtgen(),
        "timing diagram": by_diagram(),
    }
    reference = tables["hand-written"]
    print("fast packet bus, three modelling routes:")
    for label, table in tables.items():
        match = "==" if table == reference else "!="
        print(
            f"  {label:18s} length={table.length}  "
            f"II={table.min_initiation_interval()}  {match} reference"
        )
    assert all(t == reference for t in tables.values())

    print("\nend-to-end read transaction (bus -> cache port -> off-chip):")
    pipeline = TransactionPipeline()
    pipeline.append("pkt_bus", reference)
    pipeline.append("cache_port", ReservationTable({"cache.port": [0]}))
    pipeline.append(
        "offchip", ReservationTable({"pads.bus": range(20)}), gap=1
    )
    print(f"  stages: {' -> '.join(pipeline.stages)}")
    print(f"  unloaded latency: {pipeline.latency} cycles")
    print(f"  initiation interval: {pipeline.initiation_interval} cycles")
    for interval in (200.0, 50.0, 25.0):
        loaded = pipeline.loaded_latency(interval)
        print(
            f"  one transaction every {interval:5.0f} cycles -> "
            f"expected latency {loaded:6.1f} cycles"
        )


if __name__ == "__main__":
    main()
