"""Extending the IP libraries with custom components.

The exploration is library-driven: adding an entry to the memory or
connectivity library makes every subsequent exploration consider it.
This example adds

* a large 64 KiB cache and a deep self-indirect DMA to the memory
  library, and
* a 64-bit "crossbar-class" AHB and a narrow low-cost serial off-chip
  link to the connectivity library,

then explores a pointer-chasing synthetic workload and shows where the
custom components land on the pareto front.

Run:
    python examples/custom_ip_library.py
"""

from repro.apex import ApexConfig, explore_memory_architectures
from repro.conex import ConExConfig, explore_connectivity
from repro.connectivity import (
    AhbBus,
    OffChipBus,
    default_connectivity_library,
)
from repro.connectivity.library import ConnectivityPreset
from repro.memory import Cache, SelfIndirectDma, default_memory_library
from repro.memory.library import ModulePreset
from repro.trace.patterns import AccessPattern
from repro.workloads import SyntheticWorkload


def extended_memory_library():
    library = default_memory_library()
    library.add(
        ModulePreset(
            name="cache_64k_64b_4w",
            kind="cache",
            build=lambda: Cache(
                "cache_64k", 65536, line_size=64, associativity=4, hit_latency=3
            ),
        )
    )
    library.add(
        ModulePreset(
            name="si_dma_128",
            kind="self_indirect_dma",
            build=lambda: SelfIndirectDma(
                "si_dma_128", entries=128, node_size=16, lookahead=6
            ),
        )
    )
    return library


def extended_connectivity_library():
    library = default_connectivity_library()
    library.add(
        ConnectivityPreset(
            name="ahb_64",
            kind="ahb",
            off_chip_capable=False,
            build=lambda: AhbBus("ahb_64", width_bytes=8),
        )
    )
    library.add(
        ConnectivityPreset(
            name="offchip_serial",
            kind="offchip",
            off_chip_capable=True,
            build=lambda: OffChipBus("offchip_serial", width_bytes=1),
        )
    )
    return library


def main() -> None:
    # A chase-heavy workload: where DMA depth and bus width matter.
    workload = SyntheticWorkload(
        scale=1.0,
        seed=3,
        mix={
            AccessPattern.SELF_INDIRECT: 3.0,
            AccessPattern.STREAM: 1.0,
            AccessPattern.RANDOM: 1.0,
        },
    )
    trace = workload.trace()

    apex = explore_memory_architectures(
        trace,
        extended_memory_library(),
        ApexConfig(
            cache_options=(None, "cache_8k_32b_2w", "cache_64k_64b_4w"),
            dma_options=(None, "si_dma_32", "si_dma_128"),
            select_count=4,
        ),
        hints=workload.pattern_hints,
    )
    print("APEX selection (custom entries marked *):")
    for evaluated in apex.selected:
        modules = ", ".join(evaluated.architecture.modules) or "(uncached)"
        custom = any(
            m.entries == 128
            for m in evaluated.architecture.modules.values()
            if isinstance(m, SelfIndirectDma)
        ) or any(
            getattr(m, "capacity", 0) == 65536
            for m in evaluated.architecture.modules.values()
        )
        marker = " *" if custom else ""
        print(
            f"  {evaluated.cost_gates:>9,.0f} gates, miss "
            f"{evaluated.miss_ratio:.3f}: {modules}{marker}"
        )

    conex = explore_connectivity(
        trace,
        apex.selected,
        extended_connectivity_library(),
        ConExConfig(phase1_keep=6),
    )
    print("\nFinal pareto designs (custom connectivity marked *):")
    for point in sorted(conex.selected, key=lambda p: p.simulation.cost_gates):
        presets = {c.preset_name for c in point.connectivity.clusters}
        marker = " *" if presets & {"ahb_64", "offchip_serial"} else ""
        print(f"  {point.simulation.summary()}{marker}")


if __name__ == "__main__":
    main()
