"""Locality analysis: why APEX picks the modules it picks.

Uses the reuse-distance / working-set tooling to show, for the
compress workload, the measurable locality properties behind each
pattern classification — and checks them against the fully-associative
LRU hit-ratio bound that any cache of a given capacity cannot beat.

Run:
    python examples/locality_analysis.py
"""

from repro.trace.patterns import profile_patterns
from repro.trace.reuse import (
    hit_ratio_curve,
    reuse_distances,
    stride_histogram,
    working_set_profile,
)
from repro.workloads import get_workload


def main() -> None:
    workload = get_workload("compress", scale=0.2, seed=1)
    trace = workload.trace()
    profiles = profile_patterns(trace, workload.pattern_hints)

    print(f"compress trace: {len(trace)} accesses\n")
    print(f"{'structure':14s} {'pattern':14s} {'footprint':>9s} "
          f"{'ws(1k)':>7s} {'top stride':>12s}")
    for profile in profiles.values():
        working_set = working_set_profile(
            trace, window=1000, block_bytes=32, struct=profile.struct
        )
        strides = stride_histogram(trace, profile.struct, top=1)
        if strides:
            stride, fraction = next(iter(strides.items()))
            stride_text = f"{stride}B@{100 * fraction:.0f}%"
        else:
            stride_text = "-"
        print(
            f"{profile.struct:14s} {profile.pattern.value:14s} "
            f"{profile.footprint:>8d}B {working_set.peak:>6d}b "
            f"{stride_text:>12s}"
        )

    print("\nWhole-trace LRU hit-ratio bound (32 B blocks):")
    distances = reuse_distances(trace, block_bytes=32)
    capacities = [64, 128, 256, 512, 1024]  # blocks
    curve = hit_ratio_curve(distances, capacities)
    for capacity in capacities:
        kib = capacity * 32 // 1024
        bar = "#" * int(40 * curve[capacity])
        print(f"  {kib:3d} KiB  {100 * curve[capacity]:5.1f}%  {bar}")

    print(
        "\nReading: the hash/code tables' reuse spreads past small-cache"
        "\ncapacities (why APEX offers a self-indirect DMA), the streams"
        "\nhave unit strides (why stream buffers), and misc's working set"
        "\nneeds a real cache."
    )


if __name__ == "__main__":
    main()
