"""Quickstart: explore memory + connectivity architectures for compress.

Walks the paper's Figure 1 flow end to end with the default IP
libraries on a reduced-size compress workload, then prints the selected
combined designs — cost in gates, average memory latency in cycles, and
energy per access in nJ.

Run:
    python examples/quickstart.py
"""

from repro import MemorExConfig, run_memorex
from repro.apex.explorer import ApexConfig
from repro.conex.explorer import ConExConfig
from repro.core.design_point import summarize
from repro.core.reporting import format_design_points
from repro.workloads import get_workload


def main() -> None:
    # A reduced-scale compress keeps this demo under a minute; raise
    # `scale` for longer, more faithful traces.
    workload = get_workload("compress", scale=0.2, seed=1)

    config = MemorExConfig(
        apex=ApexConfig(select_count=4),
        conex=ConExConfig(phase1_keep=6),
    )
    result = run_memorex(workload, config=config)

    print(f"workload: {result.workload_name}, trace of {len(result.trace)} accesses")
    print(
        f"APEX evaluated {len(result.apex.evaluated)} memory architectures, "
        f"selected {len(result.apex.selected)}"
    )
    print(
        f"ConEx estimated {len(result.conex.estimated)} connectivity designs, "
        f"simulated {len(result.conex.simulated)}, "
        f"{len(result.selected_points)} on the final pareto"
    )
    print()
    summaries = [summarize(p) for p in result.selected_points]
    print(format_design_points(summaries, title="Selected combined designs"))

    best = min(summaries, key=lambda s: s.avg_latency)
    print()
    print(f"fastest design: {best.label}")
    for module in best.memory_modules:
        print(f"  memory: {module}")
    for connection in best.connections:
        print(f"  connectivity: {connection}")


if __name__ == "__main__":
    main()
