"""Step-by-step compress exploration (the paper's Section 4 example).

Instead of the one-call pipeline, this example runs each stage
explicitly and shows its intermediate artifacts:

1. trace the instrumented LZW compressor and classify access patterns;
2. APEX: enumerate and evaluate memory-module architectures, prune to
   the cost/miss-ratio pareto (Figure 3);
3. BRG: profile the per-channel bandwidth of one selected architecture
   (Figure 2);
4. ConEx: cluster channels, allocate connectivity components, estimate,
   and simulate (Figures 4 and 6).

Run:
    python examples/compress_exploration.py
"""

from repro.apex import ApexConfig, explore_memory_architectures
from repro.conex import ConExConfig, explore_connectivity
from repro.conex.brg import build_brg
from repro.conex.clustering import clustering_levels
from repro.connectivity import default_connectivity_library
from repro.core.reporting import ascii_scatter
from repro.memory import default_memory_library
from repro.trace.patterns import profile_patterns
from repro.workloads import get_workload


def main() -> None:
    workload = get_workload("compress", scale=0.2, seed=1)
    trace = workload.trace()

    print("=== 1. Access patterns (APEX front end) ===")
    profiles = profile_patterns(trace, workload.pattern_hints)
    for profile in profiles.values():
        print(
            f"  {profile.struct:14s} {profile.pattern.value:14s} "
            f"{profile.count:7d} accesses, footprint {profile.footprint} B"
        )

    print("\n=== 2. APEX memory-modules exploration (Figure 3) ===")
    memory_library = default_memory_library()
    apex = explore_memory_architectures(
        trace,
        memory_library,
        ApexConfig(select_count=5),
        hints=workload.pattern_hints,
    )
    for i, evaluated in enumerate(apex.selected, 1):
        modules = ", ".join(evaluated.architecture.modules) or "(uncached)"
        print(
            f"  [{i}] {evaluated.cost_gates:>9,.0f} gates, "
            f"miss {evaluated.miss_ratio:.3f}: {modules}"
        )

    print("\n=== 3. Bandwidth Requirement Graph of the richest design ===")
    richest = apex.selected[-1]
    brg = build_brg(richest.architecture, richest.result)
    print(brg.describe())
    levels = clustering_levels(brg)
    print(f"  hierarchical clustering: {[level.size for level in levels]} clusters")

    print("\n=== 4. ConEx connectivity exploration (Figures 4/6) ===")
    conex = explore_connectivity(
        trace,
        apex.selected,
        default_connectivity_library(),
        ConExConfig(phase1_keep=6),
    )
    print(
        f"  {len(conex.estimated)} configurations estimated in "
        f"{conex.phase1_seconds:.1f}s; {len(conex.simulated)} simulated in "
        f"{conex.phase2_seconds:.1f}s"
    )
    points = [
        (p.simulation.cost_gates, p.simulation.avg_latency)
        for p in conex.simulated
    ]
    print(
        ascii_scatter(
            points,
            width=64,
            height=16,
            x_label="cost [gates]",
            y_label="avg memory latency [cycles]",
        )
    )
    print("\nFinal pareto designs:")
    for point in sorted(conex.selected, key=lambda p: p.simulation.cost_gates):
        print(f"  {point.simulation.summary()}")


if __name__ == "__main__":
    main()
