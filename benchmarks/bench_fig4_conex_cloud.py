"""Figure 4 — ConEx connectivity exploration cloud for compress.

Regenerates the paper's Figure 4: for the memory architectures selected
by APEX, the connectivity design space in the cost (memory +
connectivity gates) vs average memory latency plane, with the
simulated Phase-II designs marked.

Expected shape (paper): the exploration reduces the average memory
latency substantially (the paper reports 10.6 → 6.7 cycles, a 36%
improvement) while trading off connectivity and memory cost; the cloud
has a pareto-like lower-left frontier.
"""

import common
from repro.core.reporting import ascii_scatter
from repro.util.pareto import pareto_front
from repro.util.tables import format_table


def regenerate() -> str:
    conex = common.conex_result("compress")
    estimated = [
        (p.estimate.cost_gates, p.estimate.avg_latency)
        for p in conex.estimated
    ]
    # Like the paper's Figure 4 footnote, drop the "uninteresting
    # designs exhibiting very bad performance (many times worse than
    # the best designs)" so the plot stays readable.
    best = min(latency for _, latency in estimated)
    plotted = [(c, l) for c, l in estimated if l <= 6 * best]
    dropped = len(estimated) - len(plotted)
    plot = ascii_scatter(
        plotted,
        x_label="memory+connectivity cost [gates]",
        y_label="avg memory latency [cycles]",
    )
    if dropped:
        plot += (
            f"\n({dropped} saturated designs with latency > 6x best "
            f"omitted from the plot, as in the paper)"
        )
    simulated = sorted(
        conex.simulated, key=lambda p: p.simulation.cost_gates
    )
    rows = [
        (
            p.label(),
            f"{p.simulation.cost_gates:,.0f}",
            f"{p.simulation.avg_latency:.2f}",
            f"{p.simulation.avg_energy_nj:.2f}",
        )
        for p in simulated
    ]
    table = format_table(
        ["design", "cost [gates]", "avg lat [cyc]", "energy [nJ]"],
        rows,
        title="Phase II simulated designs",
    )
    # The paper's headline: latency improvement from connectivity
    # exploration at comparable memory architectures.
    front = pareto_front(
        conex.simulated, key=lambda p: p.simulated_objectives
    )
    best = min(p.simulation.avg_latency for p in front)
    worst_interesting = max(
        p.simulation.avg_latency
        for p in front
        if p.memory_eval.architecture.modules
    )
    improvement = 100.0 * (1.0 - best / worst_interesting)
    header = (
        f"Figure 4 — ConEx cloud for compress: {len(conex.estimated)} "
        f"estimated configurations, {len(conex.simulated)} simulated.\n"
        f"Average memory latency across cache-based pareto designs: "
        f"{worst_interesting:.2f} -> {best:.2f} cycles "
        f"({improvement:.0f}% improvement; paper: 10.6 -> 6.7, 36%)"
    )
    return "\n\n".join([header, plot, table])


def test_fig4_conex_cloud(benchmark):
    text = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    common.write_output("fig4_conex_cloud", text)
    conex = common.conex_result("compress")
    latencies = [p.simulation.avg_latency for p in conex.simulated]
    costs = [p.simulation.cost_gates for p in conex.simulated]
    # Shape: a wide latency spread and a wide cost spread; connectivity
    # choice matters.
    assert max(latencies) > 1.5 * min(latencies)
    assert max(costs) > 2 * min(costs)
