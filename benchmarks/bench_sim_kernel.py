"""perf2/perf5 — reference-vs-kernel single-process simulation timing.

Times one ``Simulator.run()`` per workload twice — once through the
scalar reference loop (``reference=True``) and once through the
columnar kernel (the default) — on mixed cache/stream/SRAM/uncached
architectures, asserting exact result equality on every pair. Each
workload runs with the paper's time-sampling configuration, and
*compress*, *li*, and *vocoder* add unsampled pairs covering the
whole-trace regime the batched contention walk (perf5) targets. The
full run uses million-access traces for *compress* and *li*;
``REPRO_BENCH_SMOKE=1`` shrinks the scales to CI size (equality still
asserted, timing thresholds skipped).

Records land in ``benchmarks/out/BENCH_sim_kernel.json`` via
``common.record_kernel_timing``, plus one ``summary_sampled`` /
``summary_unsampled`` aggregate pair via
``common.record_kernel_summary``. The full run asserts the kernel is
at least 2× faster on one of the million-access sampled workloads, at
least 5× faster on the million-access unsampled compress run, and
slower on none (with a small tolerance for timer noise); see
docs/performance.md for the regime-by-regime breakdown.
"""

import os
import time

import numpy as np

import common
from repro.connectivity.architecture import (
    ConnectivityArchitecture,
    build_cluster,
)
from repro.memory.library import mixed_architecture
from repro.sim.sampling import SamplingConfig
from repro.sim.simulator import Simulator
from repro.workloads import get_workload

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "").strip() == "1"

#: Trace scales: compress exceeds one million accesses (the acceptance
#: target) and li approaches it (the interpreter recurses past Python's
#: limits above scale 1.5); the others land in the 150–500k range.
FULL_SCALES = {
    "compress": 25.0,
    "li": 1.5,
    "dct": 30.0,
    "vocoder": 20.0,
    "matmul": 12.0,
}

SMOKE_SCALES = {"compress": 0.4, "dct": 2.0}

#: The paper's sampling configuration — the regime the search runs in.
SAMPLING = SamplingConfig()

#: Tolerated timer noise on the "no slowdown on any workload" check.
NOISE_FLOOR = 0.9


def _prewarm_memory(budget_bytes: int) -> None:
    """Touch-and-free ``budget_bytes`` of RAM before timing anything.

    On hosts whose guest RAM is lazily faulted in (microVMs,
    overcommitted containers), the *first* write to each fresh page
    costs orders of magnitude more than the arithmetic the kernel does
    on it, while freed pages are reused cheaply. Faulting the pages in
    once up front moves that one-time host cost out of the timed
    region, so the records measure the simulators — the steady state
    any long-lived search process runs in — rather than the platform's
    page-fault path.
    """
    chunk_words = (64 << 20) // 8
    blocks = []
    remaining = budget_bytes
    while remaining > 0:
        block = np.empty(chunk_words, dtype=np.float64)
        block.fill(1.0)
        blocks.append(block)
        remaining -= block.nbytes
    del blocks


def _amba_connectivity(memory, trace):
    channels = memory.channels(trace)
    on_chip = [c for c in channels if not c.crosses_chip]
    crossing = [c for c in channels if c.crosses_chip]
    clusters = []
    if on_chip:
        preset = common.CONNECTIVITY_LIBRARY.get("ahb")
        clusters.append(build_cluster(on_chip, "ahb", preset.instantiate()))
    if crossing:
        preset = common.CONNECTIVITY_LIBRARY.get("offchip_16")
        clusters.append(
            build_cluster(crossing, "offchip_16", preset.instantiate())
        )
    return ConnectivityArchitecture("amba", clusters)


def _time_pair(stem, trace, memory, connectivity, sampling, **extra):
    simulator = Simulator(trace, memory, connectivity, sampling)
    start = time.perf_counter()
    reference = simulator.run(reference=True)
    reference_seconds = time.perf_counter() - start
    start = time.perf_counter()
    kernel = simulator.run(reference=False)
    kernel_seconds = time.perf_counter() - start
    assert kernel == reference, f"kernel diverged from reference on {stem}"
    return common.record_kernel_timing(
        stem, reference_seconds, kernel_seconds, len(trace), **extra
    )


def regenerate() -> str:
    scales = SMOKE_SCALES if SMOKE else FULL_SCALES
    _prewarm_memory((128 if SMOKE else 1024) << 20)
    records = []
    for name, scale in scales.items():
        trace = get_workload(name, scale=scale, seed=1).trace()
        memory = mixed_architecture(trace, common.MEMORY_LIBRARY)
        records.append(
            _time_pair(name, trace, memory, None, SAMPLING, sampled=True)
        )
        if name == "compress":
            # One connectivity-loaded pair shows the kernel helps
            # beyond the ideal+sampled sweet spot.
            records.append(
                _time_pair(
                    "compress_amba",
                    trace,
                    memory,
                    _amba_connectivity(memory, trace),
                    SAMPLING,
                    sampled=True,
                    conn="amba",
                )
            )
        if name in ("compress", "li", "vocoder"):
            # Unsampled pairs: the whole trace runs through the
            # contention-free columnar path, the regime perf5 targets.
            records.append(
                _time_pair(
                    f"{name}_unsampled", trace, memory, None, None,
                    sampled=False,
                )
            )
    regenerate.records = records
    lines = [
        f"{r['name']}: {r['accesses']} accesses, "
        f"reference {r['reference_seconds']:.2f}s -> "
        f"kernel {r['kernel_seconds']:.2f}s ({r['speedup']}x)"
        for r in records
    ]
    for stem, sampled in (("summary_sampled", True), ("summary_unsampled", False)):
        speedups = [
            r["speedup"] for r in records if bool(r.get("sampled")) is sampled
        ]
        if not speedups:
            continue
        summary = common.record_kernel_summary(
            stem, speedups, mode="sampled" if sampled else "unsampled"
        )
        lines.append(
            f"{summary['name']}: min {summary['min_speedup']}x / "
            f"mean {summary['mean_speedup']}x / "
            f"max {summary['max_speedup']}x over {summary['cases']} pairs"
        )
    return "\n".join(lines)


def test_sim_kernel(benchmark):
    text = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    common.write_output("sim_kernel", text)
    records = regenerate.records
    assert records
    if SMOKE:
        return
    sampled_big = [
        r for r in records if r.get("sampled") and r["accesses"] >= 1_000_000
    ]
    assert sampled_big, "no million-access sampled workload was timed"
    assert max(r["speedup"] for r in sampled_big) >= 2.0, sampled_big
    unsampled = {
        r["name"]: r for r in records if not r.get("sampled")
    }
    assert "compress_unsampled" in unsampled, unsampled
    assert unsampled["compress_unsampled"]["speedup"] >= 5.0, (
        unsampled["compress_unsampled"]
    )
    slow = [r for r in records if r["speedup"] < NOISE_FLOOR]
    assert not slow, f"kernel slower than reference: {slow}"
