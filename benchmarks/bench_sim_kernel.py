"""perf2 — reference-vs-kernel single-process simulation timing.

Times one ``Simulator.run()`` per workload twice — once through the
scalar reference loop (``reference=True``) and once through the
columnar kernel (the default) — on mixed cache/stream/SRAM/uncached
architectures with the paper's time-sampling configuration, asserting
exact result equality on every pair. The full run uses million-access
traces for *compress* and *li*; ``REPRO_BENCH_SMOKE=1`` shrinks the
scales to CI size (equality still asserted, timing thresholds skipped).

Records land in ``benchmarks/out/BENCH_sim_kernel.json`` via
``common.record_kernel_timing``. The full run asserts the kernel is at
least 2× faster on one of the million-access sampled workloads and
slower on none (with a small tolerance for timer noise); see
docs/performance.md for why sampled runs benefit the most.
"""

import os
import time

import common
from repro.connectivity.architecture import (
    ConnectivityArchitecture,
    build_cluster,
)
from repro.memory.library import mixed_architecture
from repro.sim.sampling import SamplingConfig
from repro.sim.simulator import Simulator
from repro.workloads import get_workload

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "").strip() == "1"

#: Trace scales: compress exceeds one million accesses (the acceptance
#: target) and li approaches it (the interpreter recurses past Python's
#: limits above scale 1.5); the others land in the 150–500k range.
FULL_SCALES = {
    "compress": 25.0,
    "li": 1.5,
    "dct": 30.0,
    "vocoder": 20.0,
    "matmul": 12.0,
}

SMOKE_SCALES = {"compress": 0.4, "dct": 2.0}

#: The paper's sampling configuration — the regime the search runs in.
SAMPLING = SamplingConfig()

#: Tolerated timer noise on the "no slowdown on any workload" check.
NOISE_FLOOR = 0.9


def _amba_connectivity(memory, trace):
    channels = memory.channels(trace)
    on_chip = [c for c in channels if not c.crosses_chip]
    crossing = [c for c in channels if c.crosses_chip]
    clusters = []
    if on_chip:
        preset = common.CONNECTIVITY_LIBRARY.get("ahb")
        clusters.append(build_cluster(on_chip, "ahb", preset.instantiate()))
    if crossing:
        preset = common.CONNECTIVITY_LIBRARY.get("offchip_16")
        clusters.append(
            build_cluster(crossing, "offchip_16", preset.instantiate())
        )
    return ConnectivityArchitecture("amba", clusters)


def _time_pair(stem, trace, memory, connectivity, sampling, **extra):
    simulator = Simulator(trace, memory, connectivity, sampling)
    start = time.perf_counter()
    reference = simulator.run(reference=True)
    reference_seconds = time.perf_counter() - start
    start = time.perf_counter()
    kernel = simulator.run(reference=False)
    kernel_seconds = time.perf_counter() - start
    assert kernel == reference, f"kernel diverged from reference on {stem}"
    return common.record_kernel_timing(
        stem, reference_seconds, kernel_seconds, len(trace), **extra
    )


def regenerate() -> str:
    scales = SMOKE_SCALES if SMOKE else FULL_SCALES
    records = []
    for name, scale in scales.items():
        trace = get_workload(name, scale=scale, seed=1).trace()
        memory = mixed_architecture(trace, common.MEMORY_LIBRARY)
        records.append(
            _time_pair(name, trace, memory, None, SAMPLING, sampled=True)
        )
        if name == "compress":
            # One connectivity-loaded pair and one unsampled pair show
            # the kernel helps beyond the ideal+sampled sweet spot.
            records.append(
                _time_pair(
                    "compress_amba",
                    trace,
                    memory,
                    _amba_connectivity(memory, trace),
                    SAMPLING,
                    sampled=True,
                    conn="amba",
                )
            )
            records.append(
                _time_pair(
                    "compress_unsampled",
                    trace,
                    memory,
                    None,
                    None,
                    sampled=False,
                )
            )
    regenerate.records = records
    lines = [
        f"{r['name']}: {r['accesses']} accesses, "
        f"reference {r['reference_seconds']:.2f}s -> "
        f"kernel {r['kernel_seconds']:.2f}s ({r['speedup']}x)"
        for r in records
    ]
    return "\n".join(lines)


def test_sim_kernel(benchmark):
    text = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    common.write_output("sim_kernel", text)
    records = regenerate.records
    assert records
    if SMOKE:
        return
    sampled_big = [
        r for r in records if r.get("sampled") and r["accesses"] >= 1_000_000
    ]
    assert sampled_big, "no million-access sampled workload was timed"
    assert max(r["speedup"] for r in sampled_big) >= 2.0, sampled_big
    slow = [r for r in records if r["speedup"] < NOISE_FLOOR]
    assert not slow, f"kernel slower than reference: {slow}"
