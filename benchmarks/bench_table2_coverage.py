"""Table 2 — pareto coverage of Pruned / Neighborhood / Full.

Regenerates the paper's Table 2: for each benchmark, the exploration
time, the percentage of true pareto points found, and the average
cost/performance/energy distance of the missed pareto points to the
closest explored design, for the Pruned, Neighborhood, and Full
strategies.

The design space is restricted (fewer library options, shorter traces)
so that Full stays tractable — the paper itself reports Full taking a
month for compress and omits li entirely for this reason. Expected
shapes: Full = 100% coverage and the most time; Pruned = a large time
reduction with partial but substantial coverage and small average
distances; Neighborhood in between.
"""

import common
from repro.apex.explorer import ApexConfig
from repro.conex.explorer import ConExConfig
from repro.core.strategies import (
    coverage_rows,
    run_full,
    run_neighborhood,
    run_pruned,
)
from repro.exec import SimulationCache
from repro.util.tables import format_table
from repro.workloads import get_workload

REDUCED_APEX = ApexConfig(
    cache_options=(None, "cache_4k_16b_1w", "cache_16k_32b_2w"),
    stream_buffer_options=(None, "stream_buffer_4"),
    dma_options=(None, "si_dma_32"),
    map_indexed_to_sram=(False, True),
    # The PR-10 families join the enumerated space: the DRAM becomes a
    # per-candidate axis (single vs 2-channel) and the scratchpad pool
    # includes the arbitrated multi-port variant.
    dram_options=("dram", "mcdram_2ch"),
    sram_kinds=("multiport_sram",),
    select_count=5,
)

REDUCED_CONEX = ConExConfig(
    max_logical_connections=3,
    max_assignments_per_level=48,
    phase1_keep=12,
)

#: Short traces keep the Full strategy tractable.
BENCH_SCALES = {"compress": 0.15, "vocoder": 0.5}


def run_benchmark(name):
    workload = get_workload(name, scale=BENCH_SCALES[name], seed=1)
    trace = workload.trace()
    hints = dict(workload.pattern_hints)
    args = (
        trace,
        common.MEMORY_LIBRARY,
        common.CONNECTIVITY_LIBRARY,
        REDUCED_APEX,
        REDUCED_CONEX,
    )
    # Each strategy gets its own fresh result cache: within-strategy
    # reuse stays (as it would in a single real run), but no strategy
    # rides another's simulations — the paper's timings are
    # from-scratch per strategy, and the time column must stay honest.
    pruned = run_pruned(*args, hints=hints, cache=SimulationCache())
    neighborhood = run_neighborhood(
        *args, hints=hints, cache=SimulationCache()
    )
    full = run_full(*args, hints=hints, cache=SimulationCache())
    return coverage_rows(full, [pruned, neighborhood]), full


def regenerate() -> str:
    rows = []
    results = {}
    fronts = {}
    for name in BENCH_SCALES:
        results[name], fronts[name] = run_benchmark(name)
        for row in results[name]:
            cost_d, perf_d, energy_d = row.distances
            rows.append(
                (
                    name,
                    row.strategy,
                    f"{row.seconds:.1f}s",
                    f"{row.coverage_percent:.0f}%",
                    f"{cost_d:.2f}%",
                    f"{perf_d:.2f}%",
                    f"{energy_d:.2f}%",
                )
            )
    table = format_table(
        [
            "benchmark",
            "strategy",
            "time",
            "coverage",
            "avg cost dist",
            "avg perf dist",
            "avg energy dist",
        ],
        rows,
        title="Table 2 — pareto coverage results",
    )
    regenerate.results = results
    regenerate.fronts = fronts
    return table


def test_table2_coverage(benchmark):
    text = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    common.write_output("table2_coverage", text)

    for name, rows in regenerate.results.items():
        by_name = {r.strategy: r for r in rows}
        full = by_name["Full"]
        pruned = by_name["Pruned"]
        neighborhood = by_name["Neighborhood"]
        # Full determines the pareto curve exactly.
        assert full.coverage_percent == 100.0
        # Pruned is much faster than Full.
        assert pruned.seconds < full.seconds / 2, name
        # Pruned finds a non-trivial share of the pareto curve. (The
        # PR-10 DRAM/scratchpad axes grew the true front, so the floor
        # is lower than the paper's single-DRAM space would suggest.)
        assert pruned.coverage_percent > 10.0, name
        # (No Neighborhood-vs-Full time assertion: in this deliberately
        # reduced space Full is cheap enough that Neighborhood's
        # one-swap simulations can rival it; the paper's ordering holds
        # in full-size spaces where Full is weeks, not seconds.)
        # Neighborhood covers at least as much as Pruned.
        assert (
            neighborhood.coverage_percent >= pruned.coverage_percent
        ), name
        # Missed points are approximated by close designs.
        assert all(d < 60.0 for d in pruned.distances), name

    # The PR-10 families are not just enumerated — they earn spots on
    # the true (Full-strategy) pareto front: the 2-channel DRAM trades
    # no on-chip gates for lower latency, and the arbitrated multi-port
    # scratchpad is the space's only local-structure mapping.
    def _front_architectures(front):
        return [point.memory_eval.architecture for point in front.pareto]

    assert any(
        getattr(arch.dram, "channels", 1) > 1
        for name in regenerate.fronts
        for arch in _front_architectures(regenerate.fronts[name])
    ), "no multi-channel DRAM design on any Full pareto front"
    assert any(
        any(
            module.kind == "multiport_sram"
            for module in arch.modules.values()
        )
        for name in regenerate.fronts
        for arch in _front_architectures(regenerate.fronts[name])
    ), "no multi-port scratchpad design on any Full pareto front"
