"""Benchmark harness configuration.

Each benchmark runs its pipeline exactly once (rounds=1) — these are
table/figure regenerations, not micro-benchmarks — and prints the
rendered artifact, which is also written under ``benchmarks/out/``.

``pytest benchmarks/ --jobs N`` forwards N into the ``REPRO_WORKERS``
environment variable, so every exploration stage dispatches its
simulation batches over N worker processes (see docs/performance.md).
"""

import os
import sys
import pathlib

# Allow `from common import ...` / `import common` in benchmark modules.
sys.path.insert(0, str(pathlib.Path(__file__).parent))


def pytest_addoption(parser):
    parser.addoption(
        "--jobs",
        type=int,
        default=None,
        help="worker processes for simulation batches (sets REPRO_WORKERS)",
    )


def pytest_configure(config):
    jobs = config.getoption("--jobs", default=None)
    if jobs:
        os.environ["REPRO_WORKERS"] = str(jobs)
