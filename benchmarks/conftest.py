"""Benchmark harness configuration.

Each benchmark runs its pipeline exactly once (rounds=1) — these are
table/figure regenerations, not micro-benchmarks — and prints the
rendered artifact, which is also written under ``benchmarks/out/``.
"""

import sys
import pathlib

# Allow `from common import ...` / `import common` in benchmark modules.
sys.path.insert(0, str(pathlib.Path(__file__).parent))
