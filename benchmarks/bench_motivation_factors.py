"""Motivation experiment — the paper's Introduction claim, quantified.

"While the memory modules configuration and characteristics are
important, often the connectivity structure has a comparably large
impact on the system performance, cost and power; thus it is critical
to consider connectivity early in the design flow."

This benchmark measures both factors on compress with one-dimensional
sweeps: cache capacity at fixed connectivity (the module factor), and
CPU-side + off-chip connection choice at fixed memory (the
connectivity factor), then reports the latency swings side by side.
"""

from repro.apex.architectures import MemoryArchitecture
from repro.core.sweep import (
    series,
    sweep_cache_size,
    sweep_cpu_bus,
    sweep_offchip_bus,
)
from repro.util.tables import format_table

import common

CACHES = [
    "cache_4k_16b_1w",
    "cache_8k_32b_2w",
    "cache_16k_32b_2w",
    "cache_32k_32b_2w",
]
CPU_BUSES = ["apb", "asb", "ahb", "ahb_wide", "mux", "dedicated"]
OFFCHIP = ["offchip_16", "offchip_32"]


def regenerate() -> str:
    trace = common.trace("compress")
    cache_points = sweep_cache_size(
        trace, common.MEMORY_LIBRARY, common.CONNECTIVITY_LIBRARY, CACHES
    )
    cache = common.MEMORY_LIBRARY.get("cache_32k_32b_2w").instantiate("cache")
    dram = common.MEMORY_LIBRARY.get("dram").instantiate()
    memory = MemoryArchitecture("fixed", [cache], dram, {}, "cache")
    bus_points = sweep_cpu_bus(
        trace, memory, common.CONNECTIVITY_LIBRARY, CPU_BUSES
    )
    offchip_points = sweep_offchip_bus(
        trace, memory, common.CONNECTIVITY_LIBRARY, OFFCHIP
    )

    rows = []
    for title, points in (
        ("cache size", cache_points),
        ("CPU-side connection", bus_points),
        ("off-chip bus", offchip_points),
    ):
        latencies = [v for _, v in series(points, "avg_latency")]
        rows.append(
            (
                title,
                f"{min(latencies):.2f}",
                f"{max(latencies):.2f}",
                f"{max(latencies) - min(latencies):.2f}",
            )
        )
    table = format_table(
        ["factor swept", "best lat [cyc]", "worst lat [cyc]", "swing [cyc]"],
        rows,
        title=(
            "Motivation — module factor vs connectivity factors "
            "(compress, everything else held constant)"
        ),
    )
    regenerate.rows = rows
    return table


def test_motivation_factors(benchmark):
    text = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    common.write_output("motivation_factors", text)
    swings = {row[0]: float(row[3]) for row in regenerate.rows}
    module_factor = swings["cache size"]
    connectivity_factor = (
        swings["CPU-side connection"] + swings["off-chip bus"]
    )
    # The paper's motivating claim: connectivity has a *comparable*
    # impact — same order of magnitude as the module factor.
    assert connectivity_factor > 0.25 * module_factor
    assert all(s > 0 for s in swings.values())
