"""Shared setup for the benchmark harness.

Each benchmark regenerates one table or figure of the paper. Several
share the same expensive pipeline stages (the compress APEX run feeds
Figures 3, 4, 6 and Table 1), so stages are cached per pytest session,
keyed by workload and configuration.

Benchmark scales are reduced relative to the paper's full SPEC runs —
the trace lengths are chosen so the whole harness completes in minutes
on a laptop while preserving every qualitative shape the paper reports.
"""

from __future__ import annotations

import functools
import json
import os
import pathlib

from repro.apex.explorer import ApexConfig, ApexResult, explore_memory_architectures
from repro.conex.explorer import ConExConfig, ConExResult, explore_connectivity
from repro.connectivity.library import default_connectivity_library
from repro.memory.library import default_memory_library
from repro.trace.events import Trace
from repro.workloads import get_workload

#: Directory where each benchmark writes its rendered table/figure.
OUTPUT_DIR = pathlib.Path(__file__).parent / "out"

#: Trace scales per workload (fractions of the default input sizes).
SCALES = {
    "compress": 0.4,
    "li": 0.12,
    "vocoder": 1.0,
    "dct": 2.0,
    "matmul": 1.5,
}

MEMORY_LIBRARY = default_memory_library()
CONNECTIVITY_LIBRARY = default_connectivity_library()

#: The full APEX configuration used by the figure/table benchmarks.
FULL_APEX = ApexConfig()

#: The ConEx configuration used by the figure/table benchmarks.
FULL_CONEX = ConExConfig(
    max_logical_connections=5,
    max_assignments_per_level=1024,
    phase1_keep=8,
)

#: A cache-only APEX configuration: the paper's "traditional cache"
#: baselines (architectures a and b of Figure 6).
TRADITIONAL_APEX = ApexConfig(
    cache_options=(
        "cache_4k_16b_1w",
        "cache_8k_32b_2w",
        "cache_16k_32b_2w",
        "cache_32k_32b_2w",
    ),
    stream_buffer_options=(None,),
    dma_options=(None,),
    map_indexed_to_sram=(False,),
    select_count=4,
)


@functools.lru_cache(maxsize=None)
def workload(name: str):
    return get_workload(name, scale=SCALES[name], seed=1)


@functools.lru_cache(maxsize=None)
def trace(name: str) -> Trace:
    return workload(name).trace()


@functools.lru_cache(maxsize=None)
def apex_result(name: str, traditional: bool = False) -> ApexResult:
    config = TRADITIONAL_APEX if traditional else FULL_APEX
    return explore_memory_architectures(
        trace(name),
        MEMORY_LIBRARY,
        config,
        hints=workload(name).pattern_hints,
    )


@functools.lru_cache(maxsize=None)
def conex_result(name: str, traditional: bool = False) -> ConExResult:
    apex = apex_result(name, traditional)
    return explore_connectivity(
        trace(name), apex.selected, CONNECTIVITY_LIBRARY, FULL_CONEX
    )


def write_output(stem: str, text: str) -> None:
    """Persist a rendered table/figure and echo it to stdout."""
    OUTPUT_DIR.mkdir(exist_ok=True)
    path = OUTPUT_DIR / f"{stem}.txt"
    path.write_text(text + "\n")
    print()
    print(text)


#: Machine-readable serial-vs-parallel timing records (one list entry
#: per benchmark stem; re-runs replace their own entry).
PARALLEL_TIMINGS = OUTPUT_DIR / "BENCH_parallel.json"


#: Machine-readable serial-vs-distributed timing records (loopback
#: socket workers; same replace-by-name convention).
DISTRIBUTED_TIMINGS = OUTPUT_DIR / "BENCH_distributed.json"


def _timing_record(
    stem: str,
    serial_seconds: float,
    parallel_seconds: float,
    workers: int,
    **extra,
) -> dict:
    return {
        "name": stem,
        "serial_seconds": round(serial_seconds, 4),
        "parallel_seconds": round(parallel_seconds, 4),
        "workers": workers,
        "speedup": round(serial_seconds / parallel_seconds, 3)
        if parallel_seconds > 0
        else None,
        "cpu_count": os.cpu_count(),
        **extra,
    }


def record_parallel_timing(
    stem: str,
    serial_seconds: float,
    parallel_seconds: float,
    workers: int,
    **extra,
) -> dict:
    """Append one serial-vs-parallel timing record to BENCH_parallel.json.

    Records ``cpu_count`` alongside the measurement so a reader can
    tell a genuine speedup apart from pool overhead on a starved
    machine. Returns the record written.
    """
    record = _timing_record(
        stem, serial_seconds, parallel_seconds, workers, **extra
    )
    return _append_record(PARALLEL_TIMINGS, record)


def record_distributed_timing(
    stem: str,
    serial_seconds: float,
    distributed_seconds: float,
    workers: int,
    **extra,
) -> dict:
    """Append one serial-vs-distributed record to BENCH_distributed.json.

    Same shape as the parallel records so the two files compare
    directly; ``workers`` counts socket worker processes (shards).
    """
    record = _timing_record(
        stem, serial_seconds, distributed_seconds, workers, **extra
    )
    return _append_record(DISTRIBUTED_TIMINGS, record)


#: Machine-readable reference-vs-kernel single-process timing records
#: (same replace-by-name convention as BENCH_parallel.json).
KERNEL_TIMINGS = OUTPUT_DIR / "BENCH_sim_kernel.json"


#: Machine-readable observability-overhead records (same
#: replace-by-name convention as BENCH_parallel.json).
OBS_TIMINGS = OUTPUT_DIR / "BENCH_obs.json"


def record_obs_timing(stem: str, **fields) -> dict:
    """Append one observability-overhead record to BENCH_obs.json."""
    record = {"name": stem, **fields, "cpu_count": os.cpu_count()}
    OUTPUT_DIR.mkdir(exist_ok=True)
    records = []
    if OBS_TIMINGS.exists():
        try:
            records = json.loads(OBS_TIMINGS.read_text())
        except ValueError:
            records = []
    records = [r for r in records if r.get("name") != stem]
    records.append(record)
    OBS_TIMINGS.write_text(json.dumps(records, indent=2) + "\n")
    return record


#: Machine-readable execution-runtime overhead records (same
#: replace-by-name convention as BENCH_parallel.json).
RUNTIME_TIMINGS = OUTPUT_DIR / "BENCH_runtime.json"


def record_runtime_timing(stem: str, **fields) -> dict:
    """Append one execution-runtime record to BENCH_runtime.json.

    Field names are benchmark-specific (dispatch overhead and columnar
    estimation report different quantities); ``cpu_count`` is stamped
    on every record so a reader can judge pool numbers from a starved
    machine fairly.
    """
    record = {"name": stem, **fields, "cpu_count": os.cpu_count()}
    OUTPUT_DIR.mkdir(exist_ok=True)
    records = []
    if RUNTIME_TIMINGS.exists():
        try:
            records = json.loads(RUNTIME_TIMINGS.read_text())
        except ValueError:
            records = []
    records = [r for r in records if r.get("name") != stem]
    records.append(record)
    RUNTIME_TIMINGS.write_text(json.dumps(records, indent=2) + "\n")
    return record


#: Machine-readable DRAM channel-scaling records (same replace-by-name
#: convention as BENCH_parallel.json).
CHANNEL_TIMINGS = OUTPUT_DIR / "BENCH_channels.json"


def record_channel_scaling(stem: str, **fields) -> dict:
    """Append one channel-scaling record to BENCH_channels.json.

    Fields are benchmark-specific (per-channel-count cycles and
    speedups); ``cpu_count`` is stamped for parity with the other
    timing files even though the measurement is deterministic.
    """
    record = {"name": stem, **fields, "cpu_count": os.cpu_count()}
    return _append_record(CHANNEL_TIMINGS, record)


def _append_record(path: pathlib.Path, record: dict) -> dict:
    """Write ``record`` to ``path``, replacing any same-name entry."""
    OUTPUT_DIR.mkdir(exist_ok=True)
    records = []
    if path.exists():
        try:
            records = json.loads(path.read_text())
        except ValueError:
            records = []
    records = [r for r in records if r.get("name") != record["name"]]
    records.append(record)
    path.write_text(json.dumps(records, indent=2) + "\n")
    return record


def record_kernel_timing(
    stem: str,
    reference_seconds: float,
    kernel_seconds: float,
    accesses: int,
    **extra,
) -> dict:
    """Append one reference-vs-kernel record to BENCH_sim_kernel.json."""
    record = {
        "name": stem,
        "accesses": accesses,
        "reference_seconds": round(reference_seconds, 4),
        "kernel_seconds": round(kernel_seconds, 4),
        "speedup": round(reference_seconds / kernel_seconds, 3)
        if kernel_seconds > 0
        else None,
        "cpu_count": os.cpu_count(),
        **extra,
    }
    return _append_record(KERNEL_TIMINGS, record)


def record_kernel_summary(stem: str, speedups, **extra) -> dict:
    """Append one aggregate speedup record to BENCH_sim_kernel.json.

    Summarizes a family of reference-vs-kernel pairs (e.g. all sampled
    or all unsampled cases) as min/mean/max speedup, so a reader gets
    the regime-level headline without re-deriving it from the
    per-workload rows.
    """
    values = sorted(float(s) for s in speedups)
    if not values:
        raise ValueError(f"no speedups to summarize for '{stem}'")
    record = {
        "name": stem,
        "cases": len(values),
        "min_speedup": round(values[0], 3),
        "mean_speedup": round(sum(values) / len(values), 3),
        "max_speedup": round(values[-1], 3),
        "cpu_count": os.cpu_count(),
        **extra,
    }
    return _append_record(KERNEL_TIMINGS, record)
