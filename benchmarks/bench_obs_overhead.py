"""perf4 — observability overhead on the simulation hot path.

The :mod:`repro.obs` layer promises to be effectively free: near-zero
when disabled (the default), and a small bounded cost when enabled.
This benchmark holds it to that promise with two measurements over a
serial ``simulate_many`` batch (cache disabled, so every run is real
simulation work):

* **Enabled overhead** — the same batch timed with recording off and
  on; the enabled wall time must stay within 5% of the disabled one.
  While enabled, every simulation records its ``sim.run`` span, the
  kernel flushes its per-span profiling counters, and the engine
  records the batch accounting — the full instrumentation cost.
* **Disabled overhead** — what the instrumentation costs when nobody
  asked for it. The in-simulation call sites all guard on one
  module-global boolean (``span()`` additionally returns a shared
  no-op singleton), so the cost is estimated as (disabled per-call
  cost, microbenchmarked over 200k calls) x (calls per batch, counted
  from an enabled run's registry), as a fraction of the batch wall
  time. It must stay under 1%.

``REPRO_BENCH_SMOKE=1`` shrinks the trace and repeat count for CI; the
threshold assertions only fire on full runs (a loaded CI box can miss
a 5% timing bar without that saying anything about the layer). Records
land in ``benchmarks/out/BENCH_obs.json``.
"""

import os
import time

import common
from repro import obs
from repro.apex.architectures import MemoryArchitecture
from repro.exec import NullCache, SimulationJob, simulate_many
from repro.workloads import get_workload

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "").strip() == "1"

TRACE_SCALE = 0.3 if SMOKE else 2.0

#: Best-of-N timing repeats per mode.
REPEATS = 2 if SMOKE else 5

#: Disabled-mode microbenchmark iterations (span + incr per loop).
MICRO_CALLS = 50_000 if SMOKE else 200_000

ENABLED_OVERHEAD_LIMIT = 5.0  # percent
DISABLED_OVERHEAD_LIMIT = 1.0  # percent

_PRESETS = ("cache_8k_32b_2w", "cache_16k_32b_2w", "cache_32k_32b_2w")


def _jobs():
    jobs = []
    for preset in _PRESETS:
        cache = common.MEMORY_LIBRARY.get(preset).instantiate("cache")
        dram = common.MEMORY_LIBRARY.get("dram").instantiate()
        memory = MemoryArchitecture(
            f"obs_{preset}", [cache], dram, {}, "cache"
        )
        jobs.append(SimulationJob(memory=memory))
    return jobs


def _time_batch(trace, jobs) -> float:
    best = float("inf")
    for _ in range(REPEATS):
        start = time.perf_counter()
        simulate_many(trace, jobs, workers=1, cache=NullCache())
        best = min(best, time.perf_counter() - start)
    return best


def _disabled_call_cost() -> float:
    """Per-call seconds of a disabled span() + incr() pair."""
    assert not obs.enabled()
    start = time.perf_counter()
    for _ in range(MICRO_CALLS):
        obs.span("bench.noop")
        obs.incr("bench.noop")
    return (time.perf_counter() - start) / (2 * MICRO_CALLS)


def regenerate() -> str:
    trace = get_workload("compress", scale=TRACE_SCALE, seed=1).trace()
    jobs = _jobs()

    obs.disable()
    obs.reset()
    disabled_seconds = _time_batch(trace, jobs)
    per_call = _disabled_call_cost()

    obs.enable()
    try:
        obs.reset()
        enabled_seconds = _time_batch(trace, jobs)
        snapshot = obs.snapshot()
    finally:
        obs.disable()

    # Every span records one paired call site and every counter key at
    # least one incr; REPEATS identical batches ran while enabled.
    span_calls = sum(count for count, _, _ in snapshot.spans.values())
    counter_calls = len(snapshot.counters) * REPEATS
    calls_per_batch = (span_calls + counter_calls) / REPEATS
    disabled_percent = (
        100.0 * calls_per_batch * per_call / disabled_seconds
        if disabled_seconds > 0
        else 0.0
    )
    enabled_percent = (
        100.0 * (enabled_seconds - disabled_seconds) / disabled_seconds
        if disabled_seconds > 0
        else 0.0
    )
    obs.reset()

    record = common.record_obs_timing(
        "obs_overhead",
        accesses=len(trace),
        jobs=len(jobs),
        repeats=REPEATS,
        disabled_seconds=round(disabled_seconds, 4),
        enabled_seconds=round(enabled_seconds, 4),
        enabled_overhead_percent=round(enabled_percent, 3),
        disabled_call_ns=round(per_call * 1e9, 2),
        calls_per_batch=round(calls_per_batch, 1),
        disabled_overhead_percent=round(disabled_percent, 5),
        smoke=SMOKE,
    )
    regenerate.record = record
    return (
        f"obs overhead over {len(jobs)} jobs x {len(trace)} accesses: "
        f"disabled {disabled_seconds:.3f}s, enabled {enabled_seconds:.3f}s "
        f"({enabled_percent:+.2f}%); disabled call site "
        f"{per_call * 1e9:.0f}ns -> {disabled_percent:.4f}% of the batch"
    )


def test_obs_overhead(benchmark):
    text = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    common.write_output("obs_overhead", text)

    record = regenerate.record
    # The structural guarantees hold at any scale.
    assert record["disabled_call_ns"] < 2_000, record
    assert not obs.enabled()
    assert obs.span("a") is obs.span("b")
    # Timing bars only on full runs: smoke boxes are too noisy.
    if not SMOKE:
        assert (
            record["enabled_overhead_percent"] <= ENABLED_OVERHEAD_LIMIT
        ), record
        assert (
            record["disabled_overhead_percent"] <= DISABLED_OVERHEAD_LIMIT
        ), record
