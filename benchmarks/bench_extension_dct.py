"""Extension experiment — exploration generality on a new workload.

The paper's claim is methodological: given *any* application's access
patterns, the coupled memory+connectivity exploration finds the
trade-off curve. This extension experiment applies the unmodified
pipeline to a workload the paper never saw — the blockwise 2-D DCT
image kernel (`repro.workloads.dct`) — and checks the expected
architectural outcome for its traffic mix: tile-local structures move
into SRAM/stream hardware, the cost/performance front is smooth, and
connectivity choice still swings performance.
"""

import common
from repro.apex.explorer import ApexConfig, explore_memory_architectures
from repro.conex.explorer import ConExConfig, explore_connectivity
from repro.util.pareto import pareto_front
from repro.util.tables import format_table
from repro.workloads import get_workload


def run_exploration():
    workload = get_workload("dct", scale=2.0, seed=1)
    trace = workload.trace()
    apex = explore_memory_architectures(
        trace,
        common.MEMORY_LIBRARY,
        ApexConfig(select_count=4),
        hints=workload.pattern_hints,
    )
    conex = explore_connectivity(
        trace,
        apex.selected,
        common.CONNECTIVITY_LIBRARY,
        ConExConfig(phase1_keep=6),
    )
    return trace, apex, conex


def regenerate() -> str:
    trace, apex, conex = run_exploration()
    front = sorted(
        pareto_front(
            conex.simulated,
            key=lambda p: (p.simulation.cost_gates, p.simulation.avg_latency),
        ),
        key=lambda p: p.simulation.cost_gates,
    )
    rows = [
        (
            p.label(),
            f"{p.simulation.cost_gates:,.0f}",
            f"{p.simulation.avg_latency:.2f}",
            f"{p.simulation.avg_energy_nj:.2f}",
            ", ".join(p.memory_eval.architecture.modules) or "(uncached)",
        )
        for p in front
    ]
    table = format_table(
        ["design", "cost [gates]", "lat [cyc]", "energy [nJ]", "memory modules"],
        rows,
        title="Extension — DCT workload cost/performance pareto",
    )
    header = (
        f"Extension experiment: unmodified pipeline on the DCT workload "
        f"({len(trace)} accesses).\n"
        f"APEX: {len(apex.evaluated)} candidates -> {len(apex.selected)} "
        f"selected; ConEx: {len(conex.estimated)} estimated -> "
        f"{len(conex.simulated)} simulated."
    )
    regenerate.data = (apex, conex, front)
    return header + "\n\n" + table


def test_extension_dct(benchmark):
    text = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    common.write_output("extension_dct", text)
    apex, conex, front = regenerate.data

    # The tile-local traffic mix should pull SRAM / stream hardware
    # into the selected architectures.
    module_kinds = {
        m.kind
        for e in apex.selected
        for m in e.architecture.modules.values()
    }
    assert "sram" in module_kinds or "stream_buffer" in module_kinds

    # Connectivity still matters on the new workload.
    latencies = [p.simulation.avg_latency for p in conex.simulated]
    assert max(latencies) > 1.3 * min(latencies)

    # And the front is a genuine trade-off curve.
    assert len(front) >= 3
    costs = [p.simulation.cost_gates for p in front]
    lats = [p.simulation.avg_latency for p in front]
    assert costs == sorted(costs)
    assert lats == sorted(lats, reverse=True)
