"""Table 1 — selected cost/performance designs for all benchmarks.

Regenerates the paper's Table 1: for compress, li, and vocoder, the
selected cost/performance designs with their cost (basic gates),
average memory latency (cycles), and average energy per access (nJ).

Expected shapes (paper):
* performance varies by an order of magnitude across the selected
  designs for compress and li (uncached/starved configs vs rich ones);
* energy consumption varies much less, "due to the fact that the
  connectivity consumes a small amount of power compared to the
  memory modules";
* vocoder's designs are several times cheaper than compress's.
"""

import common
from repro.util.pareto import pareto_front
from repro.util.tables import format_table

WORKLOADS = ("compress", "li", "vocoder")


def _selected_rows(name):
    conex = common.conex_result(name)
    front = pareto_front(
        conex.simulated,
        key=lambda p: (p.simulation.cost_gates, p.simulation.avg_latency),
    )
    return sorted(front, key=lambda p: p.simulation.cost_gates)


def regenerate() -> str:
    rows = []
    for name in WORKLOADS:
        first = True
        for point in _selected_rows(name):
            rows.append(
                (
                    name if first else "",
                    f"{point.simulation.cost_gates:,.0f}",
                    f"{point.simulation.avg_latency:.2f}",
                    f"{point.simulation.avg_energy_nj:.2f}",
                )
            )
            first = False
    return format_table(
        ["benchmark", "cost [gates]", "avg mem latency [cyc]", "avg energy [nJ]"],
        rows,
        title=(
            "Table 1 — selected cost/performance designs for the "
            "connectivity exploration"
        ),
    )


def test_table1_selected_designs(benchmark):
    text = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    common.write_output("table1_selected_designs", text)

    for name in ("compress", "li"):
        points = _selected_rows(name)
        latencies = [p.simulation.avg_latency for p in points]
        # Order-of-magnitude performance spread (paper: 69.7 -> 6.0 for
        # compress, 57.6 -> 6.8 for li).
        assert max(latencies) > 3 * min(latencies), name
        # Energy varies less than performance among the designs with
        # on-chip memory (the paper's selected designs all have one;
        # connectivity power is small next to the memory modules).
        on_chip = [
            p for p in points if p.memory_eval.architecture.modules
        ]
        energies = [p.simulation.avg_energy_nj for p in on_chip]
        lat_on_chip = [p.simulation.avg_latency for p in on_chip]
        energy_spread = max(energies) / min(energies)
        latency_spread = max(lat_on_chip) / min(lat_on_chip)
        assert energy_spread < latency_spread, name

    compress_costs = [
        p.simulation.cost_gates for p in _selected_rows("compress")
    ]
    vocoder_costs = [
        p.simulation.cost_gates for p in _selected_rows("vocoder")
    ]
    # Vocoder architectures are much cheaper (paper: 157-176k vs
    # 481-896k gates).
    assert max(vocoder_costs) < max(compress_costs)
