"""Ablation abl3 — the three constrained-selection scenarios differ.

The paper (Section 5): "In general, these three optimization goals are
incompatible. ... Typically, the pareto points in the cost/performance
space have a poor power behavior, while the pareto points in the
performance/power space will incur a large cost." This ablation runs
the three scenario selections on the vocoder exploration and reports
what each picks.

Expected shape: the scenario selections are *different* design sets,
and each optimizes its own pair of axes at the expense of the third.
"""

import common
from repro.conex.scenarios import (
    cost_constrained_selection,
    performance_constrained_selection,
    power_constrained_selection,
)
from repro.util.tables import format_table


def regenerate() -> str:
    conex = common.conex_result("vocoder")
    points = conex.simulated
    energies = sorted(p.simulation.avg_energy_nj for p in points)
    costs = sorted(p.simulation.cost_gates for p in points)
    latencies = sorted(p.simulation.avg_latency for p in points)
    scenarios = {
        "power-constrained (cost/perf pareto)": power_constrained_selection(
            points, energies[len(energies) * 3 // 4]
        ),
        "cost-constrained (perf/power pareto)": cost_constrained_selection(
            points, costs[len(costs) * 3 // 4]
        ),
        "perf-constrained (cost/power pareto)": (
            performance_constrained_selection(
                points, latencies[len(latencies) * 3 // 4]
            )
        ),
    }
    rows = []
    for name, picks in scenarios.items():
        first = True
        for point in sorted(picks, key=lambda p: p.simulation.cost_gates):
            simulation = point.simulation
            rows.append(
                (
                    name if first else "",
                    point.label(),
                    f"{simulation.cost_gates:,.0f}",
                    f"{simulation.avg_latency:.2f}",
                    f"{simulation.avg_energy_nj:.2f}",
                )
            )
            first = False
    table = format_table(
        ["scenario", "design", "cost [gates]", "lat [cyc]", "energy [nJ]"],
        rows,
        title="Ablation abl3 — constrained-selection scenarios (vocoder)",
    )
    regenerate.scenarios = {
        name: {p.label() for p in picks} for name, picks in scenarios.items()
    }
    return table


def test_ablation_scenarios(benchmark):
    text = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    common.write_output("ablation_scenarios", text)
    picks = list(regenerate.scenarios.values())
    assert all(p for p in picks)
    # The three goals are incompatible: selections differ.
    assert len({frozenset(p) for p in picks}) >= 2
