"""Figure 6 — analysis of the cost/performance pareto for compress.

Regenerates the paper's Figure 6: the selected cost/performance
memory-connectivity architectures a, b, c, ... with their contents.
Designs a and b are "two instances of a traditional cache-only memory
configuration" (here: the best cache-only architectures under an AHB
and a dedicated connection); the letters after them are the novel
memory+connectivity architectures (SRAMs, DMA-like modules, stream
buffers, MUX/AMBA connections).

Expected shape (paper): the first novel architecture (c) improves
performance ≈10% over the best traditional cache design (b) at a small
cost increase; richer architectures reach ≈26-30% improvement for
≈30% or more cost increase.
"""

import common
from repro.core.design_point import summarize
from repro.core.reporting import ascii_scatter
from repro.util.pareto import pareto_front
from repro.util.tables import format_table


def _cost_performance_front(points):
    simulated = [p for p in points if p.simulation is not None]
    return sorted(
        pareto_front(
            simulated,
            key=lambda p: (p.simulation.cost_gates, p.simulation.avg_latency),
        ),
        key=lambda p: p.simulation.cost_gates,
    )


def regenerate() -> str:
    traditional = common.conex_result("compress", traditional=True)
    novel = common.conex_result("compress")

    # a, b: the two best traditional cache-only designs.
    trad_front = _cost_performance_front(traditional.simulated)
    baseline = sorted(
        trad_front, key=lambda p: p.simulation.avg_latency
    )[:2]
    baseline = sorted(baseline, key=lambda p: p.simulation.cost_gates)
    # c..: the novel architectures' cost/perf pareto.
    novel_front = [
        p
        for p in _cost_performance_front(novel.simulated)
        if p.memory_eval.architecture.modules
    ]
    labeled = baseline + novel_front
    letters = [chr(ord("a") + i) for i in range(len(labeled))]
    best_traditional = min(p.simulation.avg_latency for p in baseline)

    rows = []
    descriptions = []
    for letter, point in zip(letters, labeled):
        summary = summarize(point)
        gain = 100.0 * (1.0 - summary.avg_latency / best_traditional)
        rows.append(
            (
                letter,
                f"{summary.cost_gates:,.0f}",
                f"{summary.avg_latency:.2f}",
                f"{gain:+.0f}%",
                f"{summary.avg_energy_nj:.2f}",
            )
        )
        modules = "; ".join(summary.memory_modules) or "uncached"
        connections = "; ".join(summary.connections)
        descriptions.append(f"  ({letter}) {modules}\n      conn: {connections}")

    plot = ascii_scatter(
        [(p.simulation.cost_gates, p.simulation.avg_latency) for p in labeled],
        x_label="cost [gates]",
        y_label="avg memory latency [cycles]",
        marks=letters,
    )
    table = format_table(
        ["pt", "cost [gates]", "avg lat [cyc]", "vs best cache", "energy [nJ]"],
        rows,
        title="Cost/performance pareto architectures (Figure 6)",
    )
    header = (
        "Figure 6 — cost/perf pareto analysis for compress.\n"
        "(a),(b): traditional cache-only designs; (c)...: novel "
        "memory+connectivity architectures."
    )
    return "\n\n".join(
        [header, plot, table, "Architecture contents:\n" + "\n".join(descriptions)]
    )


def test_fig6_pareto_analysis(benchmark):
    text = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    common.write_output("fig6_pareto_analysis", text)

    traditional = common.conex_result("compress", traditional=True)
    novel = common.conex_result("compress")
    best_traditional = min(
        p.simulation.avg_latency for p in traditional.simulated
    )
    cache_based = [
        p
        for p in novel.simulated
        if p.memory_eval.architecture.modules
    ]
    best_novel = min(p.simulation.avg_latency for p in cache_based)
    improvement = 100.0 * (1.0 - best_novel / best_traditional)
    # Paper: up to ~30% improvement over the best traditional cache
    # architecture. Accept a generous band around that shape.
    assert improvement > 10.0, f"novel designs only {improvement:.0f}% better"
