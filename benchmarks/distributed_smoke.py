"""CI loopback distributed smoke: two socket workers, Full strategy.

Launches two ``repro worker`` processes on loopback ports, points the
``remote`` backend at them via ``REPRO_WORKER_ADDRS``, runs the
reduced-space Full strategy both serially and distributed, and asserts
the runs are bit-identical — same simulated results, same pareto
front. Exit code 0 means the whole distributed path (trace shipping,
sharded dispatch, job-index merge) reproduces the serial engine
exactly.

Run directly (``python benchmarks/distributed_smoke.py``) with
``PYTHONPATH=src``; no arguments.
"""

import os
import subprocess
import sys


def _spawn_worker():
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "worker", "--port", "0"],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=dict(os.environ),
    )
    line = process.stdout.readline().strip()
    if not line.startswith("listening on "):
        raise RuntimeError(f"worker failed to start: {line!r}")
    return process, line.removeprefix("listening on ")


def main() -> int:
    processes = []
    addresses = []
    try:
        for _ in range(2):
            process, address = _spawn_worker()
            processes.append(process)
            addresses.append(address)
        os.environ["REPRO_WORKER_ADDRS"] = ",".join(addresses)

        from repro.apex.explorer import ApexConfig
        from repro.conex.explorer import ConExConfig
        from repro.connectivity.library import default_connectivity_library
        from repro.core.strategies import run_full
        from repro.exec import NullCache
        from repro.memory.library import default_memory_library
        from repro.workloads import get_workload

        apex_config = ApexConfig(
            cache_options=(None, "cache_4k_16b_1w", "cache_16k_32b_2w"),
            stream_buffer_options=(None, "stream_buffer_4"),
            dma_options=(None, "si_dma_32"),
            map_indexed_to_sram=(False,),
            select_count=5,
        )
        conex_config = ConExConfig(
            max_logical_connections=3,
            max_assignments_per_level=48,
            phase1_keep=12,
        )
        workload = get_workload("compress", scale=0.04, seed=1)
        trace = workload.trace()
        hints = dict(workload.pattern_hints)
        args = (
            trace,
            default_memory_library(),
            default_connectivity_library(),
            apex_config,
            conex_config,
        )
        serial = run_full(
            *args, hints=hints, workers=1, cache=NullCache()
        )
        distributed = run_full(
            *args, hints=hints, cache=NullCache(), backend="remote"
        )
        assert (
            distributed.pareto_vectors() == serial.pareto_vectors()
        ), "distributed pareto front differs from serial"
        assert len(distributed.simulated) == len(serial.simulated)
        print(
            f"distributed smoke OK: {len(serial.simulated)} designs over "
            f"{len(addresses)} loopback workers, pareto identical to serial"
        )
        return 0
    finally:
        for process in processes:
            if process.poll() is None:
                process.terminate()
        for process in processes:
            process.wait(timeout=30)


if __name__ == "__main__":
    sys.exit(main())
