"""Extension ext2 — DRAM channel scaling on SpMV (PR 10 families).

Sparse matrix-vector product is bandwidth-bound: the row-pointer,
column-index, and value streams hit DRAM concurrently with the
random-indexed x-vector gathers, so a single-channel part serializes
foreground refills behind background writebacks and prefetches. The
``mcdram_*`` presets split that traffic across independent channel
timelines (low-order interleaving spreads consecutive lines round-
robin), and latency should improve monotonically from one to four
channels; block interleaving is reported alongside as the contrast
case — it keeps whole streams on one channel and recovers little.

Emits ``benchmarks/out/BENCH_channels.json`` with the per-channel
cycle counts and speedups. ``REPRO_BENCH_SMOKE=1`` shrinks the trace
to CI size (the monotonicity assertions still run).
"""

import os

import common
from repro.memory.library import mixed_architecture
from repro.sim import simulate
from repro.util.tables import format_table
from repro.workloads import get_workload

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "").strip() == "1"

SCALE = 0.4 if SMOKE else 1.5

#: dram preset -> (channel count, interleave label).
CONFIGS = (
    ("dram", 1, "-"),
    ("mcdram_2ch", 2, "low"),
    ("mcdram_4ch", 4, "low"),
    ("mcdram_2ch_block", 2, "block"),
)


def _architecture(trace, dram_preset):
    return mixed_architecture(
        trace,
        common.MEMORY_LIBRARY,
        sram_preset="mp_sram_8k_2p",
        dram_preset=dram_preset,
    )


def regenerate() -> str:
    trace = get_workload("spmv", scale=SCALE, seed=7).trace()
    results = {}
    for preset, channels, interleave in CONFIGS:
        result = simulate(
            trace, _architecture(trace, preset), None, None, True
        )
        results[preset] = result
    regenerate.results = results

    base = results["dram"].total_cycles
    rows = []
    record = {"accesses": len(trace.addresses), "scale": SCALE}
    for preset, channels, interleave in CONFIGS:
        result = results[preset]
        speedup = base / result.total_cycles
        rows.append(
            (
                preset,
                str(channels),
                interleave,
                f"{result.total_cycles:,}",
                f"{result.avg_latency:.2f}",
                f"{speedup:.2f}x",
            )
        )
        record[f"{preset}_cycles"] = int(result.total_cycles)
        record[f"{preset}_speedup"] = round(speedup, 3)
    common.record_channel_scaling("spmv_channel_scaling", **record)
    return format_table(
        ["DRAM", "channels", "interleave", "cycles", "avg lat [cyc]", "speedup"],
        rows,
        title="Extension ext2 — SpMV vs DRAM channel count",
    )


def test_channel_scaling(benchmark):
    text = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    common.write_output("channel_scaling", text)
    results = regenerate.results
    one = results["dram"].total_cycles
    two = results["mcdram_2ch"].total_cycles
    four = results["mcdram_4ch"].total_cycles
    # The acceptance bar: latency improves monotonically 1 -> 4
    # channels, strictly overall.
    assert one >= two >= four
    assert four < one
    # Block interleaving keeps streams channel-local; it must not beat
    # low-order interleaving on this streaming-dominated workload.
    assert results["mcdram_2ch_block"].total_cycles >= two
