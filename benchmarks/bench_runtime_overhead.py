"""perf3 — persistent-runtime dispatch overhead + columnar Phase I.

Two measurements of what this iteration of the execution layer saves:

* **Batch dispatch** — an exploration session issues many small
  ``simulate_many`` batches. The legacy engine built a fresh process
  pool per batch and shipped the trace through the pool initializer;
  the persistent :class:`repro.exec.ExecutionRuntime` builds the pool
  once and exports the trace to shared memory once. Both parallel
  modes run the same batches over a compress trace (about a million
  accesses at full scale) with aggressive sampling, so per-batch
  *work* is small and the per-batch *setup* dominates — exactly the
  regime the runtime targets. The serial wall time is measured too and
  subtracted from each parallel mode, isolating the dispatch overhead;
  the acceptance bar is the cold-pool overhead being >= 3x the
  persistent-pool overhead.

* **Crash recovery** — the fault-tolerant dispatcher's overhead when a
  worker is SIGKILLed mid-batch (injected via ``REPRO_FAULT_INJECT``):
  the same batch is timed clean and with one induced crash, asserting
  bit-identical results and at least one pool rebuild. The recovery
  cost — tearing down the broken pool, rebuilding it, re-dispatching
  the unfinished jobs — is reported as seconds over the clean run.

* **Columnar Phase I** — the scalar estimation path materializes every
  candidate ``ConnectivityArchitecture`` and calls
  :func:`estimate_design` per candidate; the columnar
  :func:`estimate_plan` scores a whole assignment plan as NumPy folds.
  Both are timed over the full candidate sets of the compress APEX
  selections at ``max_assignments_per_level=1024``, asserting
  bit-identical estimates and a >= 5x speedup.

``REPRO_BENCH_SMOKE=1`` shrinks the trace and batch count for CI; the
threshold assertions only fire on full runs. Records land in
``benchmarks/out/BENCH_runtime.json``.
"""

import gc
import os
import tempfile
import time

import common
from repro.conex.allocation import plan_assignments
from repro.conex.brg import build_brg
from repro.conex.clustering import clustering_levels
from repro.conex.estimator import estimate_design, estimate_plan
from repro.conex.explorer import ConExConfig
from repro.exec import NullCache, SimulationJob, simulate_many
from repro.exec.runtime import (
    FAULT_INJECT_ENV,
    RUNTIME_ENV,
    ExecutionRuntime,
)
from repro.sim.sampling import SamplingConfig
from repro.workloads import get_workload

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "").strip() == "1"

#: Full scale exceeds one million accesses (the kernel benchmark's
#: acceptance trace); smoke stays CI-sized.
TRACE_SCALE = 0.4 if SMOKE else 25.0

#: Small batches, many of them: the per-batch setup regime.
N_BATCHES = 6 if SMOKE else 24
WORKERS = 2

#: Aggressive sampling keeps per-simulation work tiny so the timing
#: contrasts dispatch overhead, not simulation throughput.
SAMPLING = SamplingConfig(on_window=500, off_ratio=49, warmup=100)

#: Phase-I candidate thinning bound named by the acceptance criterion.
MAX_ASSIGNMENTS = 1024

#: Floor on a measured overhead: a persistent-pool run can time at or
#: below the serial run on a noisy machine, and the ratio needs a
#: positive denominator.
MIN_OVERHEAD = 1e-4


def _batches(trace):
    presets = ("cache_8k_32b_2w", "cache_16k_32b_2w")
    jobs = []
    for index, preset in enumerate(presets):
        cache = common.MEMORY_LIBRARY.get(preset).instantiate("cache")
        dram = common.MEMORY_LIBRARY.get("dram").instantiate()
        from repro.apex.architectures import MemoryArchitecture

        memory = MemoryArchitecture(
            f"bench_{preset}", [cache], dram, {}, "cache"
        )
        jobs.append(SimulationJob(memory=memory, sampling=SAMPLING))
    return [list(jobs) for _ in range(N_BATCHES)]


def _time_batches(trace, batches, **kwargs):
    start = time.perf_counter()
    outcomes = [
        simulate_many(trace, batch, cache=NullCache(), **kwargs).results
        for batch in batches
    ]
    return time.perf_counter() - start, outcomes


def _dispatch_overhead(trace):
    batches = _batches(trace)
    serial_seconds, serial_results = _time_batches(trace, batches, workers=1)

    # Legacy mode: a fresh pool per batch, trace via pool initializer.
    os.environ[RUNTIME_ENV] = "0"
    try:
        cold_seconds, cold_results = _time_batches(
            trace, batches, workers=WORKERS
        )
    finally:
        os.environ.pop(RUNTIME_ENV, None)

    # Persistent mode: one pool, one shared-memory trace export. Pool
    # construction is paid inside the timing, on the first batch.
    with ExecutionRuntime(workers=WORKERS) as runtime:
        persistent_seconds, persistent_results = _time_batches(
            trace, batches, runtime=runtime
        )

    assert cold_results == serial_results, "cold-pool results diverged"
    assert persistent_results == serial_results, "runtime results diverged"

    cold_overhead = max(cold_seconds - serial_seconds, MIN_OVERHEAD)
    persistent_overhead = max(
        persistent_seconds - serial_seconds, MIN_OVERHEAD
    )
    return common.record_runtime_timing(
        "batch_dispatch",
        accesses=len(trace),
        batches=N_BATCHES,
        jobs_per_batch=len(batches[0]),
        workers=WORKERS,
        serial_seconds=round(serial_seconds, 4),
        cold_pool_seconds=round(cold_seconds, 4),
        persistent_seconds=round(persistent_seconds, 4),
        cold_overhead_seconds=round(cold_overhead, 4),
        persistent_overhead_seconds=round(persistent_overhead, 4),
        overhead_ratio=round(cold_overhead / persistent_overhead, 3),
    )


def _crash_recovery(trace):
    """Time one batch clean vs with a SIGKILLed worker mid-batch."""
    jobs = _batches(trace)[0] * 4  # enough jobs for several chunks

    with ExecutionRuntime(workers=WORKERS) as runtime:
        start = time.perf_counter()
        clean = simulate_many(
            trace, jobs, cache=NullCache(), runtime=runtime
        )
        clean_seconds = time.perf_counter() - start

    with tempfile.TemporaryDirectory() as tmp:
        os.environ[FAULT_INJECT_ENV] = f"once:{os.path.join(tmp, 'crash')}"
        try:
            with ExecutionRuntime(workers=WORKERS) as runtime:
                start = time.perf_counter()
                faulted = simulate_many(
                    trace, jobs, cache=NullCache(), runtime=runtime
                )
                faulted_seconds = time.perf_counter() - start
        finally:
            os.environ.pop(FAULT_INJECT_ENV, None)

    assert faulted.results == clean.results, "recovered results diverged"
    assert faulted.pool_rebuilds >= 1, "no crash was injected"
    recovery = max(faulted_seconds - clean_seconds, 0.0)
    return common.record_runtime_timing(
        "crash_recovery",
        accesses=len(trace),
        jobs=len(jobs),
        workers=WORKERS,
        clean_seconds=round(clean_seconds, 4),
        faulted_seconds=round(faulted_seconds, 4),
        recovery_seconds=round(recovery, 4),
        pool_rebuilds=faulted.pool_rebuilds,
    )


def _columnar_phase1():
    conex = ConExConfig(max_assignments_per_level=MAX_ASSIGNMENTS)
    apex = common.apex_result("compress")
    library = common.CONNECTIVITY_LIBRARY

    plans = []
    for memory_eval in apex.selected:
        memory = memory_eval.architecture
        profile = memory_eval.result
        brg = build_brg(memory, profile)
        for level in clustering_levels(brg):
            if not (
                conex.min_logical_connections
                <= level.size
                <= conex.max_logical_connections
            ):
                continue
            plans.append(
                (
                    memory,
                    profile,
                    plan_assignments(
                        level,
                        library,
                        name_prefix=memory.name,
                        max_assignments=MAX_ASSIGNMENTS,
                    ),
                )
            )

    # Warm both paths on the smallest plan (first-call overhead —
    # allocator, NumPy dispatch — is not what this measures).
    memory, profile, plan = min(plans, key=lambda entry: len(entry[2]))
    estimate_design(memory, plan.materialize(0), profile)
    estimate_plan(memory, plan, profile, [0])

    # The dispatch stage leaves a large uncollected heap behind;
    # without a collection here its gen-2 passes fire inside the short
    # columnar window and dominate the measurement.
    gc.collect()
    start = time.perf_counter()
    scalar = [
        [
            estimate_design(memory, plan.materialize(index), profile)
            for index in range(len(plan))
        ]
        for memory, profile, plan in plans
    ]
    scalar_seconds = time.perf_counter() - start

    gc.collect()
    start = time.perf_counter()
    columnar = [
        estimate_plan(memory, plan, profile)
        for memory, profile, plan in plans
    ]
    columnar_seconds = time.perf_counter() - start

    assert columnar == scalar, "columnar estimates diverged from scalar"
    candidates = sum(len(plan) for _, _, plan in plans)
    return common.record_runtime_timing(
        "columnar_phase1",
        candidates=candidates,
        plans=len(plans),
        scalar_seconds=round(scalar_seconds, 4),
        columnar_seconds=round(columnar_seconds, 4),
        speedup=round(scalar_seconds / columnar_seconds, 3)
        if columnar_seconds > 0
        else None,
    )


def regenerate() -> str:
    trace = get_workload("compress", scale=TRACE_SCALE, seed=1).trace()
    dispatch = _dispatch_overhead(trace)
    recovery = _crash_recovery(trace)
    columnar = _columnar_phase1()
    regenerate.records = (dispatch, recovery, columnar)
    return (
        f"batch dispatch ({dispatch['batches']} batches x "
        f"{dispatch['jobs_per_batch']} jobs, {dispatch['accesses']} "
        f"accesses): serial {dispatch['serial_seconds']:.2f}s, "
        f"cold pools {dispatch['cold_pool_seconds']:.2f}s, "
        f"persistent {dispatch['persistent_seconds']:.2f}s "
        f"(overhead ratio {dispatch['overhead_ratio']}x)\n"
        f"crash recovery ({recovery['jobs']} jobs, 1 worker SIGKILL): "
        f"clean {recovery['clean_seconds']:.2f}s, "
        f"faulted {recovery['faulted_seconds']:.2f}s "
        f"(+{recovery['recovery_seconds']:.2f}s, "
        f"{recovery['pool_rebuilds']} rebuild(s), identical results)\n"
        f"columnar Phase I ({columnar['candidates']} candidates): "
        f"scalar {columnar['scalar_seconds']:.2f}s -> "
        f"columnar {columnar['columnar_seconds']:.2f}s "
        f"({columnar['speedup']}x)"
    )


def test_runtime_overhead(benchmark):
    text = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    common.write_output("runtime_overhead", text)
    dispatch, recovery, columnar = regenerate.records
    if SMOKE:
        return
    assert dispatch["overhead_ratio"] >= 3.0, dispatch
    assert columnar["speedup"] >= 5.0, columnar
