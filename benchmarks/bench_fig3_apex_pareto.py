"""Figure 3 — APEX memory-modules pareto for compress.

Regenerates the paper's Figure 3: the memory-modules design space for
the compress benchmark, cost (basic gates) on X, overall miss ratio on
Y ("accesses to on-chip memory such as the cache or SRAM are hits, and
accesses to off-chip memory are misses"), with the selected pareto
designs labeled 1..5.

Expected shape (paper): a pareto-like sweep from cheap/high-miss to
expensive/low-miss, with the non-interesting interior designs pruned
and five selected points carried into ConEx.
"""

import common
from repro.core.reporting import ascii_scatter
from repro.util.tables import format_table


def regenerate() -> str:
    apex = common.apex_result("compress")
    points = [(e.cost_gates, e.miss_ratio) for e in apex.evaluated]
    marks = ["."] * len(points)
    selected_rows = []
    for label, evaluated in enumerate(apex.selected, start=1):
        index = list(apex.evaluated).index(evaluated)
        marks[index] = str(label)
        modules = ", ".join(evaluated.architecture.modules) or "(uncached)"
        selected_rows.append(
            (
                str(label),
                f"{evaluated.cost_gates:,.0f}",
                f"{evaluated.miss_ratio:.4f}",
                f"{evaluated.avg_latency:.2f}",
                modules,
            )
        )
    plot = ascii_scatter(
        points,
        x_label="memory modules cost [gates]",
        y_label="miss ratio",
        marks=marks,
    )
    table = format_table(
        ["#", "cost [gates]", "miss ratio", "ideal lat [cyc]", "modules"],
        selected_rows,
        title="Selected memory modules architectures (Figure 3, points 1-5)",
    )
    header = (
        f"Figure 3 — APEX exploration for compress: "
        f"{len(apex.evaluated)} candidates, {len(apex.selected)} selected"
    )
    return "\n\n".join([header, plot, table])


def test_fig3_apex_pareto(benchmark):
    text = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    common.write_output("fig3_apex_pareto", text)
    apex = common.apex_result("compress")
    # Shape assertions: the pareto sweeps from cheap/high-miss to
    # expensive/low-miss.
    selected = apex.selected
    assert len(selected) >= 3
    costs = [e.cost_gates for e in selected]
    misses = [e.miss_ratio for e in selected]
    assert costs == sorted(costs)
    assert misses == sorted(misses, reverse=True)
    assert misses[0] > 10 * misses[-1]
