"""Ablation abl2 — bandwidth-guided vs arbitrary clustering order.

The paper clusters BRG arcs "based on the bandwidth requirement of each
channel", merging the lowest-bandwidth channels first so cheap shared
buses absorb cold channels while hot channels keep fast connections.
This ablation replaces the merge order with an adversarial one (merge
the *highest*-bandwidth clusters first) and compares the
cost/performance fronts reachable at the same cluster counts.

Expected shape: at equal cost budgets, bandwidth-guided clustering
reaches lower average latency (hot channels are never forced to share
early).
"""

import common
from repro.conex.allocation import enumerate_assignments
from repro.conex.brg import build_brg
from repro.conex.clustering import ClusteringLevel, LogicalConnection
from repro.conex.estimator import estimate_design
from repro.conex.clustering import clustering_levels
from repro.sim import simulate
from repro.util.tables import format_table


def _merge_highest_first(brg):
    """Adversarial clustering: merge the hottest clusters first."""
    clusters = [
        LogicalConnection(
            channels=(channel,),
            bandwidth=brg.bandwidth(channel),
            crosses_chip=channel.crosses_chip,
        )
        for channel in brg.channels
    ]
    levels = [ClusteringLevel(clusters=tuple(clusters))]
    while True:
        best_pair = None
        best_bandwidth = -1.0
        for domain in (False, True):
            members = [
                i for i, c in enumerate(clusters) if c.crosses_chip is domain
            ]
            if len(members) < 2:
                continue
            ordered = sorted(
                members, key=lambda i: clusters[i].bandwidth, reverse=True
            )
            first, second = ordered[0], ordered[1]
            combined = clusters[first].bandwidth + clusters[second].bandwidth
            if combined > best_bandwidth:
                best_bandwidth = combined
                best_pair = (min(first, second), max(first, second))
        if best_pair is None:
            break
        low, high = best_pair
        merged = LogicalConnection(
            channels=tuple(
                sorted(
                    clusters[low].channels + clusters[high].channels,
                    key=lambda c: c.name,
                )
            ),
            bandwidth=best_bandwidth,
            crosses_chip=clusters[low].crosses_chip,
        )
        clusters = (
            clusters[:low]
            + clusters[low + 1 : high]
            + clusters[high + 1 :]
            + [merged]
        )
        levels.append(ClusteringLevel(clusters=tuple(clusters)))
    return levels


def _best_latency_at_levels(trace, memory, profile, levels, library):
    """Best simulated latency over mid-hierarchy levels (3 clusters)."""
    best = None
    for level in levels:
        if level.size > 3:
            continue
        for connectivity in enumerate_assignments(
            level, library, max_assignments=24
        ):
            estimate = estimate_design(memory, connectivity, profile)
            if best is None or estimate.avg_latency < best[0].avg_latency:
                best = (estimate, connectivity)
    result = simulate(trace, memory, best[1])
    return result


def regenerate() -> str:
    trace = common.trace("compress")
    apex = common.apex_result("compress")
    library = common.CONNECTIVITY_LIBRARY
    rows = []
    wins = 0
    comparisons = 0
    for evaluated in apex.selected:
        if not evaluated.architecture.modules:
            continue  # uncached: single channel, clustering is trivial
        memory = evaluated.architecture
        profile = evaluated.result
        brg = build_brg(memory, profile)
        guided = _best_latency_at_levels(
            trace, memory, profile, clustering_levels(brg), library
        )
        adversarial = _best_latency_at_levels(
            trace, memory, profile, _merge_highest_first(brg), library
        )
        comparisons += 1
        if guided.avg_latency <= adversarial.avg_latency + 1e-9:
            wins += 1
        rows.append(
            (
                memory.name,
                f"{guided.avg_latency:.2f}",
                f"{adversarial.avg_latency:.2f}",
                f"{guided.cost_gates:,.0f}",
                f"{adversarial.cost_gates:,.0f}",
            )
        )
    table = format_table(
        [
            "memory arch",
            "guided lat [cyc]",
            "hottest-first lat [cyc]",
            "guided cost",
            "hottest-first cost",
        ],
        rows,
        title=(
            "Ablation abl2 — bandwidth-guided vs hottest-first clustering "
            "(best design at <= 3 logical connections)"
        ),
    )
    regenerate.wins = wins
    regenerate.comparisons = comparisons
    footer = (
        f"Bandwidth-guided clustering at least ties on {wins}/{comparisons} "
        f"memory architectures."
    )
    return table + "\n\n" + footer


def test_ablation_clustering_order(benchmark):
    text = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    common.write_output("ablation_clustering", text)
    assert regenerate.wins >= regenerate.comparisons / 2
