"""perf1/perf6 — Full-strategy engine timing: parallel and batch.

Two comparisons over the same Full-strategy design grid (the largest
simulation batch in the library), both with the result cache disabled
so each run measures real simulation work:

* **per-run vs batch (serial)** — the Phase II candidate list evaluated
  through :func:`repro.exec.simulate_many` (one independent kernel
  dispatch per candidate, the pre-batch path) and through
  :func:`repro.exec.simulate_batch` (candidates grouped by memory
  signature, sharing trace plans and module columns). Interleaved
  rounds; each leg records its minimum (the least-noise estimator).
  Single-process on both sides, so the speedup is real on any machine
  and the ≥5x assertion always fires.
* **serial vs parallel** — the whole Full strategy run serially and
  over four worker processes. Process pools cannot beat a serial loop
  without cores to run on, so on machines with fewer than two CPUs the
  parallel leg is **skipped** and recorded as such (a "0.7x speedup"
  row from a starved container reads like an engine regression when it
  is only a hardware fact); the ≥2x assertion needs at least four.

Every row lands in ``benchmarks/out/BENCH_parallel.json`` tagged with
the machine's ``cpu_count``; determinism (identical results whatever
the dispatch) is asserted on every leg that runs.

A third comparison, **serial vs distributed**, runs the same batch
grid against two loopback ``repro worker`` processes through a
:class:`~repro.exec.ShardedBackend` and lands in
``benchmarks/out/BENCH_distributed.json``. Bit-identity of the sharded
merge is asserted on every round, and a fault leg kills one worker
before dispatch and asserts the run still completes bit-identically
via re-dispatch to the survivor; the ≥1.5x speedup floor fires only
with two real CPUs to run the workers on.

``REPRO_BENCH_SMOKE=1`` shrinks the trace to CI size and skips the
whole-strategy serial-vs-parallel legs (determinism, the batch speedup
floor, and the distributed identity/fault legs are still asserted; the
batch floor drops to 3x because plan builds amortize over less
simulation work on the short trace).
"""

import gc
import os
import subprocess
import sys
import time
from contextlib import contextmanager

import common
import repro
from repro.apex.explorer import ApexConfig, explore_memory_architectures
from repro.conex.explorer import ConExConfig, connectivity_exploration
from repro.core.strategies import run_full
from repro.exec import (
    NullCache,
    RemoteBackend,
    ShardedBackend,
    SimulationJob,
    simulate_batch,
    simulate_many,
)
from repro.sim.batch import clear_plan_registry
from repro.workloads import get_workload

WORKERS = 4

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "").strip() == "1"

#: Minimum cross-candidate speedup of the batch evaluator over per-run
#: dispatch on this grid (single process, both sides).
MIN_BATCH_SPEEDUP = 3.0 if SMOKE else 5.0

#: Compress-trace scale: CI smoke shrinks the trace, not the grid, so
#: the smoke run still covers every group shape of the full grid.
TRACE_SCALE = 0.04 if SMOKE else 0.15

REDUCED_APEX = ApexConfig(
    cache_options=(None, "cache_4k_16b_1w", "cache_16k_32b_2w"),
    stream_buffer_options=(None, "stream_buffer_4"),
    dma_options=(None, "si_dma_32"),
    map_indexed_to_sram=(False,),
    select_count=5,
)

REDUCED_CONEX = ConExConfig(
    max_logical_connections=3,
    max_assignments_per_level=48,
    phase1_keep=12,
)


@contextmanager
def _timing_region():
    """Collector-quiesced timing (applied identically to every leg).

    Cycle-collector pauses scale with the volume of live container
    objects, not with the work under test, so they add noise that can
    swamp a short leg; every timed region below runs with the collector
    off, as pytest-benchmark's calibrated mode does.
    """
    gc.collect()
    gc.disable()
    try:
        yield
    finally:
        gc.enable()


def _full_grid_jobs(trace, hints):
    """The Full strategy's simulation job list (every design point)."""
    apex = explore_memory_architectures(
        trace, common.MEMORY_LIBRARY, REDUCED_APEX, hints=hints,
        workers=1, cache=NullCache(),
    )
    jobs = []
    for memory_eval in apex.evaluated:
        _, points = connectivity_exploration(
            trace, memory_eval, common.CONNECTIVITY_LIBRARY, REDUCED_CONEX,
        )
        jobs.extend(
            SimulationJob(
                memory=point.memory_eval.architecture,
                connectivity=point.connectivity,
            )
            for point in points
        )
    return jobs


def regenerate() -> str:
    cpu_count = os.cpu_count() or 1
    workload = get_workload("compress", scale=TRACE_SCALE, seed=1)
    trace = workload.trace()
    hints = dict(workload.pattern_hints)
    lines = []

    # -- per-run vs batch, single process --------------------------------
    # Interleaved rounds: each round times both legs back to back, and
    # each leg's recorded time is its *minimum* across rounds — the
    # standard least-noise estimator (pytest-benchmark's Min column),
    # because external interference on a shared box only ever inflates
    # a leg, never deflates it. A single-round ratio swings tens of
    # percent on machine phase alone; the per-round times land in the
    # JSON so the spread stays visible. The plan registry is cleared
    # once, before the first round, so round one pays the cold plan
    # builds and later rounds measure the warm steady state — the
    # deployment shape, where apex, conex, and the strategy comparisons
    # all hit the same trace's plans repeatedly. Bit-identity is
    # asserted on every round, not just the recorded one.
    jobs = _full_grid_jobs(trace, hints)
    rounds = 1 if SMOKE else 5
    clear_plan_registry()
    per_run_times = []
    batch_times = []
    for _ in range(rounds):
        with _timing_region():
            start = time.perf_counter()
            per_run = simulate_many(trace, jobs, workers=1, cache=NullCache())
            per_run_times.append(time.perf_counter() - start)

        with _timing_region():
            start = time.perf_counter()
            batched = simulate_batch(trace, jobs, workers=1, cache=NullCache())
            batch_times.append(time.perf_counter() - start)

        assert batched.results == per_run.results  # bit-identical, job-keyed
    per_run_seconds = min(per_run_times)
    batch_seconds = min(batch_times)
    batch_record = common.record_parallel_timing(
        "full_strategy_batch",
        per_run_seconds,
        batch_seconds,
        1,
        simulated=len(jobs),
        rounds=rounds,
        per_run_rounds=[round(t, 3) for t in per_run_times],
        batch_rounds=[round(t, 3) for t in batch_times],
        batch_groups=batched.batch_groups,
        delta_pass_candidates=batched.delta_pass_candidates,
    )
    regenerate.batch_record = batch_record
    lines.append(
        f"Batch evaluator, {len(jobs)} candidates in "
        f"{batched.batch_groups} memory-signature groups: "
        f"per-run {per_run_seconds:.1f}s, batch {batch_seconds:.1f}s "
        f"(speedup {batch_record['speedup']}x, single process)"
    )

    if SMOKE:
        regenerate.outcomes = (None, None)
        regenerate.record = None
        lines.append(
            "Whole-strategy serial/parallel legs SKIPPED (smoke mode)"
        )
        return "\n".join(lines)

    # -- serial vs parallel, whole strategy ------------------------------
    args = (
        trace,
        common.MEMORY_LIBRARY,
        common.CONNECTIVITY_LIBRARY,
        REDUCED_APEX,
        REDUCED_CONEX,
    )
    with _timing_region():
        start = time.perf_counter()
        serial = run_full(*args, hints=hints, workers=1, cache=NullCache())
        serial_seconds = time.perf_counter() - start

    if cpu_count < 2:
        # A pool on one core only adds overhead; a timing row from that
        # configuration would misread as an engine regression.
        common.record_parallel_timing(
            "full_strategy",
            serial_seconds,
            0.0,
            WORKERS,
            simulated=len(serial.simulated),
            skipped="single-core machine: parallel leg not comparable",
        )
        regenerate.outcomes = (serial, None)
        regenerate.record = None
        lines.append(
            f"Full strategy, {len(serial.simulated)} designs simulated: "
            f"serial {serial_seconds:.1f}s; parallel comparison SKIPPED "
            f"(cpu_count={cpu_count} < 2)"
        )
        return "\n".join(lines)

    with _timing_region():
        start = time.perf_counter()
        parallel = run_full(
            *args, hints=hints, workers=WORKERS, cache=NullCache()
        )
        parallel_seconds = time.perf_counter() - start

    record = common.record_parallel_timing(
        "full_strategy",
        serial_seconds,
        parallel_seconds,
        WORKERS,
        simulated=len(serial.simulated),
    )
    regenerate.outcomes = (serial, parallel)
    regenerate.record = record
    expectation = (
        "full speedup expected"
        if cpu_count >= WORKERS
        else f"underprovisioned: {cpu_count} CPUs for {WORKERS} workers"
    )
    lines.append(
        f"Full strategy, {len(serial.simulated)} designs simulated: "
        f"serial {serial_seconds:.1f}s, "
        f"workers={WORKERS} {parallel_seconds:.1f}s "
        f"(speedup {record['speedup']}x on {cpu_count} CPUs, {expectation})"
    )
    return "\n".join(lines)


DISTRIBUTED_WORKERS = 2

#: Minimum speedup of two loopback socket workers over the serial
#: batch evaluator on this grid — asserted only with the CPUs to
#: actually run them (see test_engine_distributed).
MIN_DISTRIBUTED_SPEEDUP = 1.5


def _spawn_workers(count: int):
    """Launch ``count`` loopback ``repro worker`` processes.

    Returns (processes, addresses); each worker binds port 0 and
    reports the chosen port on its first stdout line.
    """
    src = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    env = dict(os.environ)
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    processes = []
    addresses = []
    for _ in range(count):
        process = subprocess.Popen(
            [sys.executable, "-m", "repro", "worker", "--port", "0"],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=env,
        )
        processes.append(process)
        line = process.stdout.readline().strip()
        if not line.startswith("listening on "):
            raise RuntimeError(f"worker failed to start: {line!r}")
        addresses.append(line.removeprefix("listening on "))
    return processes, addresses


def _stop_workers(processes) -> None:
    for process in processes:
        if process.poll() is None:
            process.terminate()
    for process in processes:
        process.wait(timeout=30)


def regenerate_distributed() -> str:
    cpu_count = os.cpu_count() or 1
    workload = get_workload("compress", scale=TRACE_SCALE, seed=1)
    trace = workload.trace()
    hints = dict(workload.pattern_hints)
    jobs = _full_grid_jobs(trace, hints)
    clear_plan_registry()
    lines = []

    processes, addresses = _spawn_workers(DISTRIBUTED_WORKERS)
    try:
        backend = ShardedBackend(
            [RemoteBackend(address) for address in addresses]
        )
        # Interleaved min-of-rounds, like the batch leg. Round one pays
        # the one-time costs on both sides — cold trace plans serially,
        # the trace push (once per worker, never again) remotely — so
        # later rounds measure the steady state.
        rounds = 1 if SMOKE else 3
        serial_times = []
        distributed_times = []
        identical = True
        for _ in range(rounds):
            with _timing_region():
                start = time.perf_counter()
                serial = simulate_batch(
                    trace, jobs, workers=1, cache=NullCache()
                )
                serial_times.append(time.perf_counter() - start)

            with _timing_region():
                start = time.perf_counter()
                distributed = simulate_batch(
                    trace, jobs, cache=NullCache(), backend=backend
                )
                distributed_times.append(time.perf_counter() - start)

            identical = identical and (
                distributed.results == serial.results
            )
        serial_seconds = min(serial_times)
        distributed_seconds = min(distributed_times)
        backend.close()

        # Fault leg: one worker dies before the batch is dispatched;
        # the sharded backend must detect the dead socket, re-dispatch
        # its groups to the survivor, and still merge bit-identically.
        fault_backend = ShardedBackend(
            [RemoteBackend(address) for address in addresses]
        )
        processes[-1].terminate()
        processes[-1].wait(timeout=30)
        fault = simulate_batch(
            trace, jobs, cache=NullCache(), backend=fault_backend
        )
        fault_backend.close()
        fault_identical = fault.results == serial.results

        record = common.record_distributed_timing(
            "full_strategy_distributed",
            serial_seconds,
            distributed_seconds,
            DISTRIBUTED_WORKERS,
            simulated=len(jobs),
            rounds=rounds,
            serial_rounds=[round(t, 3) for t in serial_times],
            distributed_rounds=[round(t, 3) for t in distributed_times],
            bytes_sent=distributed.bytes_sent,
            bytes_received=distributed.bytes_received,
            identical=identical,
            fault_identical=fault_identical,
            fault_retries=fault.retries,
            fault_degraded=fault.degraded,
        )
        regenerate_distributed.record = record
        regenerate_distributed.identical = identical
        regenerate_distributed.fault = fault
        regenerate_distributed.fault_identical = fault_identical
        expectation = (
            "full speedup expected"
            if cpu_count > DISTRIBUTED_WORKERS
            else f"{cpu_count} CPUs for {DISTRIBUTED_WORKERS} workers"
        )
        lines.append(
            f"Distributed batch, {len(jobs)} candidates over "
            f"{DISTRIBUTED_WORKERS} loopback workers: "
            f"serial {serial_seconds:.1f}s, "
            f"distributed {distributed_seconds:.1f}s "
            f"(speedup {record['speedup']}x on {cpu_count} CPUs, "
            f"{expectation}); "
            f"kill-one-worker run: retries={fault.retries}, "
            f"bit-identical={fault_identical}"
        )
    finally:
        _stop_workers(processes)
    return "\n".join(lines)


def test_engine_parallel(benchmark):
    text = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    common.write_output("engine_parallel", text)

    # The batch evaluator's cross-candidate sharing is single-process:
    # its speedup floor holds regardless of the machine's core count.
    batch_record = regenerate.batch_record
    assert batch_record["speedup"] >= MIN_BATCH_SPEEDUP, batch_record

    serial, parallel = regenerate.outcomes
    if serial is not None and parallel is not None:
        # Determinism contract: the pareto set is workers-invariant.
        assert parallel.pareto_vectors() == serial.pareto_vectors()
        assert len(parallel.simulated) == len(serial.simulated)
        assert parallel.workers == WORKERS
    # Pool speedup is only measurable with real cores to run on.
    if (os.cpu_count() or 1) >= WORKERS:
        record = regenerate.record
        assert record["speedup"] >= 2.0, record


def test_engine_distributed(benchmark):
    text = benchmark.pedantic(
        regenerate_distributed, rounds=1, iterations=1
    )
    common.write_output("engine_distributed", text)

    # Determinism and fault recovery hold on any machine.
    assert regenerate_distributed.identical
    fault = regenerate_distributed.fault
    assert regenerate_distributed.fault_identical
    assert fault.retries >= 1 or fault.degraded
    # Two worker processes cannot beat a serial loop without at least
    # two cores to run on.
    if (os.cpu_count() or 1) >= 2:
        record = regenerate_distributed.record
        assert record["speedup"] >= MIN_DISTRIBUTED_SPEEDUP, record
