"""perf1 — serial-vs-parallel Full-strategy timing (repro.exec engine).

Runs the Full exploration strategy — the largest simulation batch in
the library — once serially and once over four worker processes, with
the result cache disabled in both runs so each measures real
simulation work. Asserts the engine's determinism contract (identical
pareto sets regardless of worker count) and records both wall times in
``benchmarks/out/BENCH_parallel.json``.

The ≥2x speedup assertion only fires on machines with at least four
CPUs: process pools cannot beat a serial loop on a single core, and a
timing miss there would say nothing about the engine. The JSON record
is written either way, tagged with the machine's ``cpu_count``.
"""

import os
import time

import common
from repro.apex.explorer import ApexConfig
from repro.conex.explorer import ConExConfig
from repro.core.strategies import run_full
from repro.exec import NullCache
from repro.workloads import get_workload

WORKERS = 4

REDUCED_APEX = ApexConfig(
    cache_options=(None, "cache_4k_16b_1w", "cache_16k_32b_2w"),
    stream_buffer_options=(None, "stream_buffer_4"),
    dma_options=(None, "si_dma_32"),
    map_indexed_to_sram=(False,),
    select_count=5,
)

REDUCED_CONEX = ConExConfig(
    max_logical_connections=3,
    max_assignments_per_level=48,
    phase1_keep=12,
)


def regenerate() -> str:
    workload = get_workload("compress", scale=0.15, seed=1)
    trace = workload.trace()
    hints = dict(workload.pattern_hints)
    args = (
        trace,
        common.MEMORY_LIBRARY,
        common.CONNECTIVITY_LIBRARY,
        REDUCED_APEX,
        REDUCED_CONEX,
    )

    start = time.perf_counter()
    serial = run_full(*args, hints=hints, workers=1, cache=NullCache())
    serial_seconds = time.perf_counter() - start

    start = time.perf_counter()
    parallel = run_full(
        *args, hints=hints, workers=WORKERS, cache=NullCache()
    )
    parallel_seconds = time.perf_counter() - start

    record = common.record_parallel_timing(
        "full_strategy",
        serial_seconds,
        parallel_seconds,
        WORKERS,
        simulated=len(serial.simulated),
    )
    regenerate.outcomes = (serial, parallel)
    regenerate.record = record
    return (
        f"Full strategy, {len(serial.simulated)} designs simulated: "
        f"serial {serial_seconds:.1f}s, "
        f"workers={WORKERS} {parallel_seconds:.1f}s "
        f"(speedup {record['speedup']}x on {record['cpu_count']} CPUs)"
    )


def test_engine_parallel(benchmark):
    text = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    common.write_output("engine_parallel", text)

    serial, parallel = regenerate.outcomes
    # Determinism contract: the pareto set is workers-invariant.
    assert parallel.pareto_vectors() == serial.pareto_vectors()
    assert len(parallel.simulated) == len(serial.simulated)
    assert parallel.workers == WORKERS
    # Speedup only measurable with real cores to run on.
    if (os.cpu_count() or 1) >= WORKERS:
        record = regenerate.record
        assert record["speedup"] >= 2.0, record
