"""CI service smoke: the daemon end to end over loopback HTTP.

Launches ``python -m repro serve`` as a subprocess on a loopback
port, submits a tiny apex exploration job through
:class:`~repro.service.client.ServiceClient`, streams its progress
events until done, asserts the pareto result is non-empty, then sends
``SIGTERM`` and asserts the daemon drains cleanly (prints ``drained
cleanly`` and exits 0). Exit code 0 means the whole service path —
HTTP submit, queueing, execution against a persistent runtime, result
pickup, graceful drain — works against a real process boundary.

Run directly (``python benchmarks/service_smoke.py``) with
``PYTHONPATH=src``; no arguments.
"""

import os
import signal
import subprocess
import sys


def main() -> int:
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0"],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=dict(os.environ),
    )
    try:
        line = process.stdout.readline().strip()
        if not line.startswith("serving on "):
            raise RuntimeError(f"daemon failed to start: {line!r}")
        address = line.removeprefix("serving on ")

        from repro.service.client import ServiceClient

        client = ServiceClient(f"http://{address}", tenant="ci")
        health = client.health()
        assert health["state"] == "serving", health

        job = client.submit(
            {"kind": "apex", "workload": "dct", "scale": 0.05, "seed": 1}
        )
        stages = []
        final = client.wait(
            job["id"],
            timeout=180.0,
            on_event=lambda event: stages.append(event["stage"]),
        )
        assert final["state"] == "done", final
        architectures = client.result(job["id"])["result"]["architectures"]
        assert architectures, "service returned an empty pareto result"

        process.send_signal(signal.SIGTERM)
        output, _ = process.communicate(timeout=60)
        assert process.returncode == 0, (
            f"daemon exited {process.returncode}: {output}"
        )
        assert "drained cleanly" in output, output
        print(
            f"service smoke OK: job {job['id']} ran "
            f"{' -> '.join(stages)} and returned "
            f"{len(architectures)} architectures; SIGTERM drained cleanly"
        )
        return 0
    finally:
        if process.poll() is None:
            process.kill()
            process.wait(timeout=30)


if __name__ == "__main__":
    sys.exit(main())
