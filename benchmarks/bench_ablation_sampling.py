"""Ablation abl1 — time-sampling estimation fidelity.

The paper (Section 5): "the time-sampling estimation does not have a
very good absolute accuracy compared to full simulation. However, we
use it only for relative incremental decisions ... and the estimation
fidelity is sufficient to make good pruning decisions."

This ablation quantifies that: a set of design points is evaluated both
with full simulation and with 1/9 time-sampled simulation, and the
rank correlation (Spearman) plus absolute error are reported.

Expected shape: noticeable absolute error, but rank correlation close
to 1.0 — good enough to prune with.
"""

from scipy.stats import spearmanr

import common
from repro.sim import SamplingConfig, simulate
from repro.util.tables import format_table

SAMPLING = SamplingConfig(on_window=500, off_ratio=9, warmup=100)


def evaluate_points():
    conex = common.conex_result("compress")
    trace = common.trace("compress")
    rows = []
    for point in conex.simulated[:14]:
        full = point.simulation
        sampled = simulate(
            trace,
            point.memory_eval.architecture,
            point.connectivity,
            sampling=SAMPLING,
        )
        rows.append((point.label(), full, sampled))
    return rows


def regenerate() -> str:
    rows = evaluate_points()
    full_latency = [r[1].avg_latency for r in rows]
    sampled_latency = [r[2].avg_latency for r in rows]
    rho, _ = spearmanr(full_latency, sampled_latency)
    errors = [
        abs(s - f) / f for _, f, s in [(r[0], r[1].avg_latency, r[2].avg_latency) for r in rows]
    ]
    table = format_table(
        ["design", "full lat [cyc]", "sampled lat [cyc]", "error"],
        [
            (
                label,
                f"{full.avg_latency:.2f}",
                f"{sampled.avg_latency:.2f}",
                f"{100 * abs(sampled.avg_latency - full.avg_latency) / full.avg_latency:.1f}%",
            )
            for label, full, sampled in rows
        ],
        title="Ablation abl1 — 1/9 time-sampling vs full simulation",
    )
    footer = (
        f"Spearman rank correlation: {rho:.3f} "
        f"(mean abs latency error {100 * sum(errors) / len(errors):.1f}%) — "
        f"fidelity sufficient for pruning decisions, as the paper claims."
    )
    regenerate.rho = rho
    return table + "\n\n" + footer


def test_ablation_sampling_fidelity(benchmark):
    text = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    common.write_output("ablation_sampling", text)
    assert regenerate.rho > 0.8
