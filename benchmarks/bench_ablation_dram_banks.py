"""Ablation abl4 — DRAM banking (library-extension experiment).

The default DRAM keeps one open row; the ``dram_4bank`` preset keeps
one per bank with row-interleaving. On workloads whose off-chip
traffic interleaves multiple regions (cache refills from different
structures, stream-buffer prefetches), banking converts row thrashing
into page hits — shorter refills and lower DRAM energy — at zero
on-chip gate cost (the banking lives off-chip).

This quantifies the extension so library users know when the banked
preset is worth selecting via ``ApexConfig.dram_preset``.
"""

import common
from repro.apex.architectures import MemoryArchitecture
from repro.sim import simulate
from repro.util.tables import format_table

WORKLOADS = ("compress", "vocoder")


def _architecture(name, banks_preset):
    cache = common.MEMORY_LIBRARY.get("cache_4k_16b_1w").instantiate("cache")
    dram = common.MEMORY_LIBRARY.get(banks_preset).instantiate()
    return MemoryArchitecture(
        f"{name}_{banks_preset}", [cache], dram, {}, "cache"
    )


def regenerate() -> str:
    rows = []
    results = {}
    for name in WORKLOADS:
        trace = common.trace(name)
        single = simulate(trace, _architecture(name, "dram"))
        banked = simulate(trace, _architecture(name, "dram_4bank"))
        single_hits = single.modules  # noqa: F841 (kept for symmetry)
        results[name] = (single, banked)
        for label, result, arch_name in (
            ("1 bank", single, "dram"),
            ("4 banks", banked, "dram_4bank"),
        ):
            page_hits = _page_hit_ratio(trace, arch_name)
            rows.append(
                (
                    name if label == "1 bank" else "",
                    label,
                    f"{result.avg_latency:.2f}",
                    f"{result.avg_energy_nj:.2f}",
                    f"{100 * page_hits:.0f}%",
                )
            )
    regenerate.results = results
    return format_table(
        ["benchmark", "DRAM", "avg lat [cyc]", "energy [nJ]", "page hits"],
        rows,
        title="Ablation abl4 — DRAM banking under a small cache",
    )


def _page_hit_ratio(trace, dram_preset):
    architecture = _architecture(trace.name, dram_preset)
    simulate(trace, architecture)
    dram = architecture.dram
    return dram.page_hits / dram.accesses if dram.accesses else 0.0


def test_ablation_dram_banks(benchmark):
    text = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    common.write_output("ablation_dram_banks", text)
    for name, (single, banked) in regenerate.results.items():
        # Banking never hurts, and helps at least one workload clearly.
        assert banked.avg_latency <= single.avg_latency + 1e-9, name
        assert banked.avg_energy_nj <= single.avg_energy_nj + 1e-9, name
    improvements = [
        single.avg_latency - banked.avg_latency
        for single, banked in regenerate.results.values()
    ]
    assert max(improvements) > 0.1
