"""Ablation abl5 — posted writes (CPU write-buffer extension).

The paper's CPU blocks on every access (no write buffer — typical for
its era's small embedded cores). The simulator's ``posted_writes``
option models a write buffer: the CPU continues after handing a write
to the memory system while the write's traffic still occupies channels
and DRAM. This ablation quantifies the effect per workload, split by
write share — posting should help in proportion to how write-heavy the
trace is, and never change what actually moves on the channels. (The gain is
not strictly proportional to the write *count* — it depends on how
expensive the posted writes would have been, i.e. their miss mix.)
"""

import common
from repro.apex.architectures import MemoryArchitecture
from repro.sim import simulate
from repro.util.tables import format_table

WORKLOADS = ("compress", "li", "vocoder", "dct")


def _architecture(name):
    cache = common.MEMORY_LIBRARY.get("cache_8k_32b_2w").instantiate("cache")
    dram = common.MEMORY_LIBRARY.get("dram").instantiate()
    return MemoryArchitecture(f"{name}_c8k", [cache], dram, {}, "cache")


def regenerate() -> str:
    rows = []
    outcomes = {}
    for name in WORKLOADS:
        trace = common.trace(name)
        blocking = simulate(trace, _architecture(name))
        posted = simulate(trace, _architecture(name), posted_writes=True)
        write_share = float((trace.kinds == 1).sum()) / len(trace)
        gain = 100.0 * (1.0 - posted.avg_latency / blocking.avg_latency)
        outcomes[name] = (blocking, posted, write_share, gain)
        rows.append(
            (
                name,
                f"{100 * write_share:.0f}%",
                f"{blocking.avg_latency:.2f}",
                f"{posted.avg_latency:.2f}",
                f"{gain:.0f}%",
            )
        )
    regenerate.outcomes = outcomes
    return format_table(
        ["benchmark", "writes", "blocking lat", "posted lat", "gain"],
        rows,
        title="Ablation abl5 — posted writes (write-buffer model)",
    )


def test_ablation_posted_writes(benchmark):
    text = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    common.write_output("ablation_posted_writes", text)
    gains = []
    for name, (blocking, posted, write_share, gain) in regenerate.outcomes.items():
        # Posting never hurts and never changes channel traffic.
        assert posted.avg_latency <= blocking.avg_latency + 1e-9, name
        for channel, traffic in blocking.channels.items():
            assert (
                posted.channels[channel].bytes_moved == traffic.bytes_moved
            ), name
        # Every workload writes, so every workload gains something.
        assert gain > 0.0, name
        gains.append(gain)
    # And the effect is material, not epsilon, on average.
    assert sum(gains) / len(gains) > 5.0
